//! The typed failure vocabulary of the snapshot subsystem.

/// Everything that can go wrong writing, reading, or decoding a
/// snapshot. Restore paths are expected to match on the variant —
/// in particular [`SnapshotError::EpochMismatch`], the typed
/// stale-snapshot rejection that keeps a crashed-and-restored session
/// from silently forking its stream history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Host I/O failure (open/read/write/rename), with the OS error
    /// rendered. Carried as a string so the error stays `Clone + Eq`
    /// and dependency-free.
    Io(String),
    /// The file does not start with the snapshot magic — not a
    /// snapshot at all, or one mangled beyond recognition.
    BadMagic,
    /// The format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// A section's payload does not hash to the checksum the table
    /// recorded for it.
    ChecksumMismatch {
        /// The corrupted section's name.
        section: String,
    },
    /// A section the restore path requires is absent.
    MissingSection(String),
    /// The byte stream is structurally malformed: truncated payload,
    /// an impossible length, a non-UTF-8 name, a decoder reading past
    /// its section, or an invalid enum tag.
    Corrupt(String),
    /// The snapshot's stream epoch is not the one the caller
    /// demanded — a *stale* checkpoint. Restoring it would rewind the
    /// stream and fork history, so the mismatch is a hard typed error
    /// rather than a silent success.
    EpochMismatch {
        /// The epoch the caller expected (the latest checkpoint's).
        expected: u64,
        /// The epoch embedded in the snapshot file.
        found: u64,
    },
    /// The snapshot names a maintainer kind the restoring registry
    /// has no loader for (a snapshot from a build with more crates,
    /// or a registry assembled without one of the loader sets).
    UnknownMaintainer {
        /// The unrecognized `Maintain::name()` recorded at save time.
        kind: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(
                    f,
                    "section `{section}` failed its checksum (corrupted payload)"
                )
            }
            SnapshotError::MissingSection(name) => {
                write!(f, "required section `{name}` is missing from the snapshot")
            }
            SnapshotError::Corrupt(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::EpochMismatch { expected, found } => write!(
                f,
                "stale snapshot: stream epoch {found}, but the latest checkpoint is epoch \
                 {expected} — restoring would fork the stream history"
            ),
            SnapshotError::UnknownMaintainer { kind } => {
                write!(f, "no registered loader for maintainer kind `{kind}`")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = SnapshotError::EpochMismatch {
            expected: 3,
            found: 1,
        };
        let text = e.to_string();
        assert!(text.contains("stale"));
        assert!(text.contains("epoch 1"));
        assert!(text.contains("epoch 3"));
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::UnknownMaintainer {
            kind: "connectivity".into()
        }
        .to_string()
        .contains("connectivity"));
    }
}
