//! The [`Persist`] trait and its implementations for the std types
//! the workspace's state is built from.
//!
//! Every encoding is self-delimiting (fixed-width scalars,
//! length-prefixed collections) and has exactly one byte
//! representation per value, so `save → load → save` reproduces the
//! original bytes — the round-trip stability the snapshot test suite
//! pins for every maintainer kind.

use crate::error::SnapshotError;
use crate::format::{SnapshotReader, SnapshotWriter};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A value that can be serialized into a snapshot section and
/// reconstructed from one.
///
/// Implementations across the workspace follow two rules:
///
/// 1. **Save accumulated state, reconstruct derived state.** Seeds
///    and counters are written; hash coefficient tables, power
///    tables, and sampler families are rebuilt from them on load, so
///    restored randomness continues the original stream bit-for-bit.
/// 2. **Decode defensively.** `load` returns
///    [`SnapshotError::Corrupt`] on anything structurally invalid;
///    it never panics on attacker-shaped bytes.
pub trait Persist: Sized {
    /// Appends this value's encoding to the writer's open section.
    fn save(&self, w: &mut SnapshotWriter);

    /// Decodes one value from the cursor.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on truncated or invalid bytes.
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;
}

macro_rules! persist_scalar {
    ($ty:ty, $put:ident, $take:ident) => {
        impl Persist for $ty {
            fn save(&self, w: &mut SnapshotWriter) {
                w.$put(*self);
            }
            fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
                r.$take()
            }
        }
    };
}

persist_scalar!(u8, put_u8, take_u8);
persist_scalar!(u32, put_u32, take_u32);
persist_scalar!(u64, put_u64, take_u64);
persist_scalar!(i64, put_i64, take_i64);
persist_scalar!(i128, put_i128, take_i128);
persist_scalar!(usize, put_usize, take_usize);
persist_scalar!(f64, put_f64, take_f64);
persist_scalar!(bool, put_bool, take_bool);

impl Persist for u16 {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u32(u32::from(*self));
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let v = r.take_u32()?;
        u16::try_from(v).map_err(|_| SnapshotError::Corrupt(format!("u16 out of range: {v}")))
    }
}

impl Persist for String {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_str(self);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_str()
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.len() as u64);
        for item in self {
            item.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.take_usize()?;
        // Guard the pre-allocation: a corrupted length must not OOM
        // before the per-element decode detects the truncation.
        let mut out = Vec::with_capacity(len.min(r.remaining().max(1)));
        for _ in 0..len {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for Option<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            b => Err(SnapshotError::Corrupt(format!("invalid Option tag {b}"))),
        }
    }
}

impl<K: Persist + Ord, V: Persist> Persist for BTreeMap<K, V> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.len() as u64);
        for (k, v) in self {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.take_usize()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Persist + Ord> Persist for BTreeSet<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.len() as u64);
        for item in self {
            item.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.take_usize()?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::load(r)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn save(&self, w: &mut SnapshotWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn save(&self, w: &mut SnapshotWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<T: Persist> Persist for Arc<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        T::save(self, w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Arc::new(T::load(r)?))
    }
}

/// Saves one value as the entire content of a named section.
pub fn save_section<T: Persist>(w: &mut SnapshotWriter, name: &str, value: &T) -> u64 {
    w.begin_section(name);
    value.save(w);
    w.end_section()
}

/// Loads one value from an entire named section, requiring the
/// section to be fully consumed.
///
/// # Errors
///
/// [`SnapshotError::MissingSection`] or any decode failure.
pub fn load_section<T: Persist>(
    snap: &crate::format::Snapshot,
    name: &str,
) -> Result<T, SnapshotError> {
    let mut r = snap.section(name)?;
    let v = T::load(&mut r)?;
    r.expect_end()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Snapshot;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = SnapshotWriter::new(0);
        save_section(&mut w, "t", v);
        let first = w.finish();
        let snap = Snapshot::from_bytes(&first).unwrap();
        let loaded: T = load_section(&snap, "t").unwrap();
        assert_eq!(&loaded, v);
        // Byte-stability: re-saving the loaded value reproduces the
        // identical container.
        let mut w2 = SnapshotWriter::new(0);
        save_section(&mut w2, "t", &loaded);
        assert_eq!(w2.finish(), first);
    }

    #[test]
    fn std_types_round_trip_byte_stably() {
        round_trip(&42u8);
        round_trip(&7u16);
        round_trip(&u32::MAX);
        round_trip(&u64::MAX);
        round_trip(&-5i64);
        round_trip(&i128::MIN);
        round_trip(&usize::MAX);
        round_trip(&true);
        round_trip(&f64::NEG_INFINITY);
        round_trip(&0.25f64);
        round_trip(&String::from("käse"));
        round_trip(&vec![1u64, 2, 3]);
        round_trip(&Option::<u64>::None);
        round_trip(&Some(9u64));
        round_trip(&BTreeMap::from([(1u32, vec![2u64]), (3, vec![])]));
        round_trip(&BTreeSet::from([4u64, 7]));
        round_trip(&(1u64, String::from("x")));
        round_trip(&(1u64, 2u32, vec![false, true]));
        round_trip(&Arc::new(11u64));
    }

    #[test]
    fn nan_round_trips_bit_exactly() {
        let v = f64::from_bits(0x7ff8_0000_0000_1234);
        let mut w = SnapshotWriter::new(0);
        save_section(&mut w, "t", &v);
        let snap = Snapshot::from_bytes(&w.finish()).unwrap();
        let loaded: f64 = load_section(&snap, "t").unwrap();
        assert_eq!(loaded.to_bits(), v.to_bits());
    }

    #[test]
    fn corrupted_length_does_not_allocate_unbounded() {
        let mut w = SnapshotWriter::new(0);
        w.begin_section("t");
        w.put_u64(u64::MAX); // absurd element count, no elements
        w.end_section();
        let snap = Snapshot::from_bytes(&w.finish()).unwrap();
        let res: Result<Vec<u64>, _> = load_section(&snap, "t");
        assert!(matches!(res, Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn invalid_tags_are_corrupt_not_panics() {
        let mut w = SnapshotWriter::new(0);
        w.begin_section("t");
        w.put_u8(7);
        w.end_section();
        let snap = Snapshot::from_bytes(&w.finish()).unwrap();
        let opt: Result<Option<u64>, _> = load_section(&snap, "t");
        assert!(matches!(opt, Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn partial_section_consumption_is_an_error() {
        let mut w = SnapshotWriter::new(0);
        w.begin_section("t");
        w.put_u64(1);
        w.put_u64(2);
        w.end_section();
        let snap = Snapshot::from_bytes(&w.finish()).unwrap();
        let res: Result<u64, _> = load_section(&snap, "t");
        assert!(matches!(res, Err(SnapshotError::Corrupt(_))));
    }
}
