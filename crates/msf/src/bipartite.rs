//! Dynamic bipartiteness testing (paper Section 7.3, Theorem 7.3).
//!
//! Uses the bipartite double cover `G'`: every vertex `v` becomes
//! `v₁ = v` and `v₂ = v + n`, every edge `{u, v}` becomes
//! `{u₁, v₂}` and `{u₂, v₁}`. By [AGM12, Lemma 3.3] (the paper's
//! Lemma 7.4), `G` is bipartite iff `cc(G') = 2·cc(G)`. Maintaining
//! connectivity of both graphs answers bipartiteness in constant
//! time per query.

use mpc_graph::ids::Edge;
use mpc_graph::update::{Batch, Update};
use mpc_sim::MpcContext;
use mpc_stream_core::{Connectivity, ConnectivityConfig, ConnectivityError};

/// Batch-dynamic bipartiteness.
///
/// # Examples
///
/// ```
/// use mpc_msf::Bipartiteness;
/// use mpc_graph::ids::Edge;
/// use mpc_graph::update::{Batch, Update};
/// use mpc_sim::{MpcConfig, MpcContext};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctx = MpcContext::new(
///     MpcConfig::builder(16, 0.5).local_capacity(1 << 14).build(),
/// );
/// let mut bip = Bipartiteness::new(8, 42);
/// // A 4-cycle is bipartite…
/// bip.apply_batch(
///     &Batch::inserting([
///         Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3), Edge::new(3, 0),
///     ]),
///     &mut ctx,
/// )?;
/// assert!(bip.is_bipartite());
/// // …until a chord closes an odd cycle.
/// bip.apply_batch(&Batch::inserting([Edge::new(0, 2)]), &mut ctx)?;
/// assert!(!bip.is_bipartite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Bipartiteness {
    n: usize,
    graph: Connectivity,
    cover: Connectivity,
}

impl Bipartiteness {
    /// Creates the tester for an empty graph on `n` vertices. The
    /// double cover uses `2n` vertices internally.
    pub fn new(n: usize, seed: u64) -> Self {
        Bipartiteness {
            n,
            graph: Connectivity::new(n, ConnectivityConfig::default(), seed),
            cover: Connectivity::new(2 * n, ConnectivityConfig::default(), seed ^ 0xb1b1),
        }
    }

    /// Processes a batch: each update is applied to `G` and its two
    /// lifted copies to `G'` (Section 7.3: one update in `G` becomes
    /// exactly two in `G'`).
    ///
    /// # Errors
    ///
    /// Propagates connectivity errors.
    pub fn apply_batch(
        &mut self,
        batch: &Batch,
        ctx: &mut MpcContext,
    ) -> Result<(), ConnectivityError> {
        let n = self.n as u32;
        let lift = |u: Update| -> [Update; 2] {
            let e = u.edge();
            let (a, b) = e.endpoints();
            let e1 = Edge::new(a, b + n);
            let e2 = Edge::new(a + n, b);
            match u {
                Update::Insert(_) => [Update::Insert(e1), Update::Insert(e2)],
                Update::Delete(_) => [Update::Delete(e1), Update::Delete(e2)],
            }
        };
        let cover_batch: Batch = batch.iter().flat_map(lift).collect();
        // G and its double cover are maintained in parallel.
        ctx.parallel_begin();
        let result = (|| {
            self.graph.apply_batch(batch, ctx)?;
            ctx.parallel_branch();
            self.cover.apply_batch(&cover_batch, ctx)?;
            ctx.parallel_branch();
            Ok(())
        })();
        ctx.parallel_end();
        result
    }

    /// Whether the current graph is bipartite (constant query time).
    pub fn is_bipartite(&self) -> bool {
        self.cover.component_count() == 2 * self.graph.component_count()
    }

    /// Number of components of the underlying graph.
    pub fn component_count(&self) -> usize {
        self.graph.component_count()
    }

    /// Number of vertices of the underlying graph (the double cover
    /// internally uses `2n`).
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Cumulative `ℓ0`-sampler failures in `G` and its double cover.
    pub fn sampler_failure_count(&self) -> u64 {
        self.graph.sampler_failure_count() + self.cover.sampler_failure_count()
    }

    /// Total memory in words (both connectivity instances).
    pub fn words(&self) -> u64 {
        self.graph.words() + self.cover.words()
    }
}

impl mpc_stream_core::Maintain for Bipartiteness {
    fn save_state(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        mpc_snapshot::Persist::save(self, w);
    }

    fn name(&self) -> &'static str {
        "bipartiteness"
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        Bipartiteness::words(self)
    }

    fn l0_failures(&self) -> u64 {
        self.sampler_failure_count()
    }

    fn ingest(
        &mut self,
        batch: &Batch,
        ctx: &mut MpcContext,
    ) -> Result<(), mpc_sim::MpcStreamError> {
        Bipartiteness::apply_batch(self, batch, ctx)?;
        Ok(())
    }

    fn supports(&self, query: &mpc_stream_core::QueryRequest) -> bool {
        use mpc_stream_core::QueryRequest;
        matches!(
            query,
            QueryRequest::IsBipartite | QueryRequest::ComponentCount
        )
    }

    /// Bipartiteness compares the component counts of `G` and the
    /// double cover `G'` (Lemma 7.4): two label sorts (parallel, but
    /// charged as one phase here) plus the two-count gather.
    fn answer(
        &mut self,
        query: &mpc_stream_core::QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<mpc_stream_core::QueryResponse, mpc_sim::MpcStreamError> {
        use mpc_stream_core::{QueryRequest, QueryResponse};
        match *query {
            QueryRequest::IsBipartite => {
                ctx.sort(2 * self.n as u64); // the cover's labels dominate
                ctx.converge_cast(2, 1);
                Ok(QueryResponse::Bool(self.is_bipartite()))
            }
            QueryRequest::ComponentCount => {
                ctx.sort(self.n as u64);
                Ok(QueryResponse::Count(self.component_count() as u64))
            }
            _ => Err(mpc_stream_core::unsupported_query("bipartiteness", query)),
        }
    }
}

// ----- snapshot persistence ---------------------------------------

impl mpc_snapshot::Persist for Bipartiteness {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        self.graph.save(w);
        self.cover.save(w);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let n = r.take_usize()?;
        let graph = Connectivity::load(r)?;
        let cover = Connectivity::load(r)?;
        if graph.vertex_count() != n || cover.vertex_count() != 2 * n {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "bipartiteness tester holds a {}-vertex graph and {}-vertex cover for n = {n}",
                graph.vertex_count(),
                cover.vertex_count()
            )));
        }
        Ok(Bipartiteness { n, graph, cover })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::gen;
    use mpc_graph::oracle;
    use mpc_sim::MpcConfig;

    fn ctx_for(n: usize) -> MpcContext {
        MpcContext::new(
            MpcConfig::builder(2 * n, 0.5)
                .local_capacity(1 << 16)
                .build(),
        )
    }

    #[test]
    fn odd_cycle_detected_and_recovers() {
        let n = 8;
        let mut ctx = ctx_for(n);
        let mut bip = Bipartiteness::new(n, 1);
        bip.apply_batch(
            &Batch::inserting([Edge::new(0, 1), Edge::new(1, 2)]),
            &mut ctx,
        )
        .unwrap();
        assert!(bip.is_bipartite());
        bip.apply_batch(&Batch::inserting([Edge::new(0, 2)]), &mut ctx)
            .unwrap();
        assert!(!bip.is_bipartite());
        // Deleting any odd-cycle edge restores bipartiteness.
        bip.apply_batch(&Batch::deleting([Edge::new(1, 2)]), &mut ctx)
            .unwrap();
        assert!(bip.is_bipartite());
    }

    #[test]
    fn even_cycles_stay_bipartite() {
        let n = 8;
        let mut ctx = ctx_for(n);
        let mut bip = Bipartiteness::new(n, 2);
        bip.apply_batch(
            &Batch::inserting((0..8u32).map(|i| Edge::new(i, (i + 1) % 8))),
            &mut ctx,
        )
        .unwrap();
        assert!(bip.is_bipartite());
    }

    #[test]
    fn generated_violation_window_is_tracked() {
        let (stream, window) = gen::bipartite_stream_with_violation(12, 8, 4, Some(3), 9);
        let (start, end) = window.expect("violation injected");
        let mut ctx = ctx_for(stream.n);
        let mut bip = Bipartiteness::new(stream.n, 3);
        let snaps = stream.replay();
        for (i, (batch, snap)) in stream.batches.iter().zip(&snaps).enumerate() {
            bip.apply_batch(batch, &mut ctx).unwrap();
            let edges: Vec<Edge> = snap.edges().collect();
            let expect = oracle::is_bipartite(stream.n, &edges);
            assert_eq!(bip.is_bipartite(), expect, "batch {i}");
            if i >= start && i < end {
                assert!(!bip.is_bipartite());
            }
        }
    }

    #[test]
    fn component_counts_match() {
        let n = 10;
        let mut ctx = ctx_for(n);
        let mut bip = Bipartiteness::new(n, 4);
        bip.apply_batch(
            &Batch::inserting([Edge::new(0, 1), Edge::new(3, 4)]),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(bip.component_count(), n - 2);
        assert!(bip.words() > 0);
    }
}
