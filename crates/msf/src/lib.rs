//! Minimum spanning forests and bipartiteness in the streaming MPC
//! model (paper Section 7, Theorems 7.1 and 7.3).
//!
//! Three algorithms, all built on the connectivity core:
//!
//! * [`exact::ExactMsf`] — exact MSF under **insertion-only** batches
//!   (Section 7.1). Maintains the forest as Euler tours; each batch
//!   resolves cross-component edges by a coordinator-local Kruskal
//!   over the auxiliary graph and intra-component edges by parallel
//!   `Identify-Path` heaviest-edge swaps.
//! * [`approx::ApproxMsfWeight`] / [`approx::ApproxMsfForest`] —
//!   `(1+ε)`-approximate MSF weight and forest under **arbitrary**
//!   batches (Section 7.2), via `⌈log_{1+ε} W⌉ + 1` threshold
//!   connectivity instances (the \[CRT'05\] reduction).
//! * [`bipartite::Bipartiteness`] — dynamic bipartiteness testing
//!   (Section 7.3) via the bipartite double cover: `G` is bipartite
//!   iff `cc(G') = 2·cc(G)`.

#![forbid(unsafe_code)]

pub mod approx;
pub mod bipartite;
pub mod exact;

pub use approx::{unit_weighted, ApproxMsfForest, ApproxMsfWeight};
pub use bipartite::Bipartiteness;
pub use exact::{ExactMsf, MsfError};

/// Registers this crate's snapshot decoders — `msf-exact`,
/// `msf-approx-weight`, `msf-approx-forest`, and `bipartiteness` —
/// into a [`MaintainerRegistry`](mpc_stream_core::MaintainerRegistry).
pub fn register_snapshot_loaders(reg: &mut mpc_stream_core::MaintainerRegistry) {
    use mpc_snapshot::Persist;
    reg.register("msf-exact", |r| Ok(Box::new(ExactMsf::load(r)?)));
    reg.register("msf-approx-weight", |r| {
        Ok(Box::new(ApproxMsfWeight::load(r)?))
    });
    reg.register("msf-approx-forest", |r| {
        Ok(Box::new(ApproxMsfForest::load(r)?))
    });
    reg.register("bipartiteness", |r| Ok(Box::new(Bipartiteness::load(r)?)));
}
