//! Exact minimum spanning forest in insertion-only streams
//! (paper Section 7.1, Theorem 7.1(i)).
//!
//! The forest is maintained as distributed Euler tours. A batch of
//! `k` weighted insertions is processed in a constant number of
//! per-iteration rounds:
//!
//! 1. **Cross-component edges** (Case 1 of Section 7.1.2): the
//!    coordinator gathers the `O(k)` candidate edges, runs Kruskal on
//!    the component quotient, and splices the winners' Euler tours in
//!    one `batch_join`.
//! 2. **Intra-component edges** (Case 2): all remaining candidates
//!    run `Identify-Path` *in parallel* (one broadcast of all
//!    endpoints' `f/ℓ` values; every machine tests its own edges);
//!    each candidate learns the heaviest edge `e'` on its tree path.
//!    Candidates not lighter than their path maximum are discarded by
//!    the cycle rule. The heaviest edges are cut in one
//!    `batch_split`, and the displaced edges re-enter as candidates.
//!
//! Steps 1–2 repeat until no candidate survives. The paper sketches a
//! single pass; when several candidates share path edges a single
//! pass can miss a beneficial second swap, so we iterate to a
//! fixpoint — each iteration strictly decreases the forest weight, so
//! the loop terminates, and measured iteration counts (reported in
//! `EXPERIMENTS.md`) are 1–2 on the evaluation workloads. Exactness
//! is asserted against Kruskal in the tests.

use mpc_etf::DistEtf;
use mpc_graph::ids::{Edge, VertexId, WeightedEdge};
use mpc_graph::oracle::UnionFind;
use mpc_graph::update::WeightedBatch;
use mpc_sim::{MpcContext, MpcError};
use std::collections::{BTreeMap, BTreeSet};

/// Errors surfaced by the exact MSF algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsfError {
    /// An MPC resource constraint was violated.
    Mpc(MpcError),
    /// The batch contained a deletion (this algorithm is
    /// insertion-only, per Theorem 7.1(i)).
    DeletionNotSupported(Edge),
    /// A duplicate edge insertion.
    DuplicateEdge(Edge),
    /// An edge endpoint is outside `[0, n)`.
    VertexOutOfRange(Edge, usize),
    /// The swap machinery violated an internal invariant — the loop
    /// failed to converge, or the forest bookkeeping lost an edge.
    NoConvergence,
}

impl std::fmt::Display for MsfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsfError::Mpc(e) => write!(f, "mpc resource violation: {e}"),
            MsfError::DeletionNotSupported(e) => {
                write!(f, "deletion of {e} in insertion-only MSF stream")
            }
            MsfError::DuplicateEdge(e) => write!(f, "duplicate insertion of {e}"),
            MsfError::VertexOutOfRange(e, n) => {
                write!(f, "edge {e} has an endpoint outside [0, {n})")
            }
            MsfError::NoConvergence => write!(f, "swap loop failed to converge"),
        }
    }
}

impl std::error::Error for MsfError {}

impl From<MpcError> for MsfError {
    fn from(e: MpcError) -> Self {
        MsfError::Mpc(e)
    }
}

impl From<MsfError> for mpc_sim::MpcStreamError {
    fn from(e: MsfError) -> Self {
        match e {
            MsfError::Mpc(inner) => mpc_sim::MpcStreamError::Capacity(inner),
            MsfError::DeletionNotSupported(edge) => mpc_sim::MpcStreamError::Unsupported(format!(
                "deletion of {edge} in insertion-only MSF stream"
            )),
            MsfError::DuplicateEdge(edge) => {
                mpc_sim::MpcStreamError::InvalidBatch(format!("duplicate insertion of {edge}"))
            }
            MsfError::VertexOutOfRange(edge, n) => mpc_sim::MpcStreamError::InvalidBatch(format!(
                "edge {edge} has an endpoint outside [0, {n})"
            )),
            MsfError::NoConvergence => {
                mpc_sim::MpcStreamError::Internal("swap loop failed to converge".into())
            }
        }
    }
}

impl mpc_stream_core::Maintain for ExactMsf {
    fn save_state(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        mpc_snapshot::Persist::save(self, w);
    }

    fn name(&self) -> &'static str {
        "msf-exact"
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        ExactMsf::words(self)
    }

    /// Unweighted batches are interpreted with unit weights (the MSF
    /// then coincides with any spanning forest, which the weight and
    /// swap machinery handles as the all-ties case).
    fn ingest(
        &mut self,
        batch: &mpc_graph::update::Batch,
        ctx: &mut MpcContext,
    ) -> Result<(), mpc_sim::MpcStreamError> {
        self.ingest_weighted(&crate::approx::unit_weighted(batch), ctx)
    }

    fn ingest_weighted(
        &mut self,
        batch: &WeightedBatch,
        ctx: &mut MpcContext,
    ) -> Result<(), mpc_sim::MpcStreamError> {
        ExactMsf::apply_batch(self, batch, ctx)?;
        Ok(())
    }

    fn supports(&self, query: &mpc_stream_core::QueryRequest) -> bool {
        use mpc_stream_core::QueryRequest;
        matches!(
            query,
            QueryRequest::Connected(..)
                | QueryRequest::ComponentOf(..)
                | QueryRequest::ComponentCount
                | QueryRequest::ForestWeight
                | QueryRequest::SpanningForest
        )
    }

    /// Maintained forest ⇒ `O(1)`-round answers: point queries are
    /// one exchange, the weight is one converge-cast of per-shard
    /// partial sums, and whole-solution reports charge the output
    /// sort.
    fn answer(
        &mut self,
        query: &mpc_stream_core::QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<mpc_stream_core::QueryResponse, mpc_sim::MpcStreamError> {
        use mpc_stream_core::{ensure_vertex_in, QueryRequest, QueryResponse};
        match *query {
            QueryRequest::Connected(u, v) => {
                ensure_vertex_in(u.max(v), self.n)?;
                ctx.exchange(2);
                Ok(QueryResponse::Bool(self.connected(u, v)))
            }
            QueryRequest::ComponentOf(v) => {
                ensure_vertex_in(v, self.n)?;
                ctx.exchange(2);
                Ok(QueryResponse::Vertex(self.component_of(v)))
            }
            QueryRequest::ComponentCount => {
                ctx.sort(self.n as u64);
                // The forest spans: cc = n − |F|.
                Ok(QueryResponse::Count((self.n - self.weights.len()) as u64))
            }
            QueryRequest::ForestWeight => {
                ctx.converge_cast(self.n as u64, 1);
                Ok(QueryResponse::Weight(self.weight() as f64))
            }
            QueryRequest::SpanningForest => {
                let forest: Vec<Edge> = self.etf.forest_edges().collect();
                ctx.sort(2 * forest.len() as u64);
                Ok(QueryResponse::Edges(forest))
            }
            _ => Err(mpc_stream_core::unsupported_query("msf-exact", query)),
        }
    }
}

/// Exact MSF under insertion-only batches.
///
/// # Examples
///
/// ```
/// use mpc_msf::ExactMsf;
/// use mpc_graph::ids::WeightedEdge;
/// use mpc_graph::update::WeightedBatch;
/// use mpc_sim::{MpcConfig, MpcContext};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctx = MpcContext::new(
///     MpcConfig::builder(8, 0.5).local_capacity(1 << 12).build(),
/// );
/// let mut msf = ExactMsf::new(8);
/// msf.apply_batch(
///     &WeightedBatch::inserting([
///         WeightedEdge::new(0, 1, 5),
///         WeightedEdge::new(1, 2, 3),
///         WeightedEdge::new(0, 2, 4), // closes a cycle; 5 is evicted
///     ]),
///     &mut ctx,
/// )?;
/// assert_eq!(msf.weight(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExactMsf {
    n: usize,
    comp: Vec<VertexId>,
    etf: DistEtf,
    weights: BTreeMap<Edge, u64>,
    /// Iterations used by the most recent batch (for the ablation
    /// experiment).
    last_iterations: usize,
    seen: BTreeSet<Edge>,
}

impl ExactMsf {
    /// Creates the structure for an empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        ExactMsf {
            n,
            comp: (0..n as u32).collect(),
            etf: DistEtf::new(n),
            weights: BTreeMap::new(),
            last_iterations: 0,
            seen: BTreeSet::new(),
        }
    }

    /// Bootstraps the structure from an arbitrary pre-existing
    /// weighted simple graph (the paper's "pre-computation phase"
    /// remark, end of Section 1.1): the edges stream through the
    /// normal insertion path in machine-sized chunks, costing
    /// `O((m/s)·(1/φ))` rounds once.
    ///
    /// # Errors
    ///
    /// Same contract as [`ExactMsf::apply_batch`].
    pub fn from_graph(
        n: usize,
        edges: impl IntoIterator<Item = WeightedEdge>,
        ctx: &mut MpcContext,
    ) -> Result<Self, MsfError> {
        let mut msf = ExactMsf::new(n);
        let chunk = (ctx.config().local_capacity() / 4).max(1) as usize;
        let all: Vec<WeightedEdge> = edges.into_iter().collect();
        for ch in all.chunks(chunk) {
            msf.apply_batch(&WeightedBatch::inserting(ch.iter().copied()), ctx)?;
        }
        Ok(msf)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The current minimum spanning forest with weights.
    pub fn forest(&self) -> Vec<WeightedEdge> {
        self.etf
            .forest_edges()
            .map(|e| WeightedEdge {
                edge: e,
                weight: self.weights[&e],
            })
            .collect()
    }

    /// Total weight of the current MSF.
    pub fn weight(&self) -> u64 {
        self.weights.values().sum()
    }

    /// Component id of `v` (smallest member id).
    pub fn component_of(&self, v: VertexId) -> VertexId {
        self.comp[v as usize]
    }

    /// Whether two vertices are connected.
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.comp[u as usize] == self.comp[v as usize]
    }

    /// Swap-loop iterations consumed by the last batch.
    pub fn last_iterations(&self) -> usize {
        self.last_iterations
    }

    /// Memory footprint in words (component ids + tours + weights).
    pub fn words(&self) -> u64 {
        self.n as u64 + self.etf.words() + 2 * self.weights.len() as u64
    }

    /// Processes a batch of weighted insertions.
    ///
    /// # Errors
    ///
    /// * [`MsfError::DeletionNotSupported`] if the batch deletes.
    /// * [`MsfError::DuplicateEdge`] on re-insertion of a live or
    ///   previously dominated edge.
    /// * [`MsfError::Mpc`] on resource violations.
    pub fn apply_batch(
        &mut self,
        batch: &WeightedBatch,
        ctx: &mut MpcContext,
    ) -> Result<(), MsfError> {
        if let Some(d) = batch.deletions().next() {
            return Err(MsfError::DeletionNotSupported(d.edge));
        }
        // Validate the whole batch before any mutation, so an error
        // leaves the structure (including `seen`) untouched.
        for we in batch.insertions() {
            if we.edge.v() as usize >= self.n {
                return Err(MsfError::VertexOutOfRange(we.edge, self.n));
            }
        }
        let mut cand: Vec<WeightedEdge> = Vec::new();
        for we in batch.insertions() {
            if !self.seen.insert(we.edge) {
                return Err(MsfError::DuplicateEdge(we.edge));
            }
            cand.push(we);
        }
        self.last_iterations = 0;
        // Fixpoint loop; each iteration is O(1) rounds. 2k+2 bounds
        // the number of candidate re-activations.
        let max_iter = 2 * cand.len() + 2;
        while !cand.is_empty() {
            self.last_iterations += 1;
            if self.last_iterations > max_iter {
                return Err(MsfError::NoConvergence);
            }
            cand = self.one_iteration(cand, ctx)?;
        }
        Ok(())
    }

    /// One Case-1 + Case-2 pass; returns the reactivated candidates.
    fn one_iteration(
        &mut self,
        mut cand: Vec<WeightedEdge>,
        ctx: &mut MpcContext,
    ) -> Result<Vec<WeightedEdge>, MsfError> {
        let k = cand.len() as u64;
        // --- Case 1: cross-component candidates -------------------
        ctx.gather(3 * k)?;
        cand.sort_by_key(|we| (we.weight, we.edge));
        let mut index: BTreeMap<VertexId, u32> = BTreeMap::new();
        for we in &cand {
            for c in [
                self.comp[we.edge.u() as usize],
                self.comp[we.edge.v() as usize],
            ] {
                let next = index.len() as u32;
                index.entry(c).or_insert(next);
            }
        }
        let mut uf = UnionFind::new(index.len());
        let mut joins: Vec<WeightedEdge> = Vec::new();
        let mut rest: Vec<WeightedEdge> = Vec::new();
        for we in cand {
            let a = index[&self.comp[we.edge.u() as usize]];
            let b = index[&self.comp[we.edge.v() as usize]];
            if a != b && uf.union(a, b) {
                joins.push(we);
            } else {
                rest.push(we);
            }
        }
        if !joins.is_empty() {
            let edges: Vec<Edge> = joins.iter().map(|we| we.edge).collect();
            self.etf.batch_join(&edges, ctx);
            for we in &joins {
                self.weights.insert(we.edge, we.weight);
            }
            // Component relabel (minimum id per merged group).
            let mut group_min: BTreeMap<u32, VertexId> = BTreeMap::new();
            for (&c, &i) in &index {
                let root = uf.find(i);
                group_min
                    .entry(root)
                    .and_modify(|m| *m = (*m).min(c))
                    .or_insert(c);
            }
            let relabel: BTreeMap<VertexId, VertexId> = index
                .iter()
                .filter_map(|(&c, &i)| {
                    let target = group_min[&uf.find(i)];
                    (target != c).then_some((c, target))
                })
                .collect();
            ctx.sort(2 * relabel.len() as u64 + 1);
            ctx.broadcast(2);
            if !relabel.is_empty() {
                // Relabelled components all live in tours that gained
                // a join edge — visit only those members, not all n.
                let mut merged_tours: Vec<mpc_etf::TourId> = joins
                    .iter()
                    .map(|we| self.etf.tour_of(we.edge.u()))
                    .collect();
                merged_tours.sort_unstable();
                merged_tours.dedup();
                for t in merged_tours {
                    for &w in self.etf.tour_members(t) {
                        let cv = &mut self.comp[w as usize];
                        if let Some(&nc) = relabel.get(cv) {
                            *cv = nc;
                        }
                    }
                }
            }
        }
        // --- Case 2: intra-component candidates -------------------
        if rest.is_empty() {
            return Ok(Vec::new());
        }
        // One broadcast of all endpoints' f/ℓ values; each machine
        // evaluates the path test for its own edges (Lemma 7.2).
        ctx.exchange(4 * rest.len() as u64);
        ctx.sort(4 * rest.len() as u64);
        ctx.broadcast(2);
        // Path maxima, one shard pass per affected tour: candidates
        // sharing a tour are tested against each shard edge in shard
        // order, so the tour's edge array is scanned once for all of
        // them (not once per candidate) and each edge's weight is
        // looked up at most once per pass — the membership test is
        // Lemma 7.2's interval disjunction, evaluated per candidate.
        let mut by_tour: BTreeMap<mpc_etf::TourId, Vec<usize>> = BTreeMap::new();
        for (i, we) in rest.iter().enumerate() {
            by_tour
                .entry(self.etf.tour_of(we.edge.u()))
                .or_default()
                .push(i);
        }
        let mut heaviest: Vec<Option<WeightedEdge>> = vec![None; rest.len()];
        for (tour, cands) in by_tour {
            let spans: Vec<((u64, u64), (u64, u64))> = cands
                .iter()
                .map(|&i| {
                    let e = rest[i].edge;
                    (self.etf.f_l(e.u()), self.etf.f_l(e.v()))
                })
                .collect();
            for (pe, rec) in self.etf.tour_edges(tour) {
                let (lo, hi) = rec.subtree_interval();
                // Entries (lo-1, hi] are the subtree below `pe`; the
                // edge is on a candidate's path iff it separates the
                // candidate's endpoints.
                let mut weighted: Option<WeightedEdge> = None;
                for (&i, &((fu, lu), (fv, lv))) in cands.iter().zip(&spans) {
                    let in_u = fu > lo - 1 && lu <= hi;
                    let in_v = fv > lo - 1 && lv <= hi;
                    if in_u == in_v {
                        continue;
                    }
                    let on_path = *weighted.get_or_insert_with(|| WeightedEdge {
                        edge: pe,
                        weight: self.weights[&pe],
                    });
                    if heaviest[i]
                        .is_none_or(|h| (on_path.weight, on_path.edge) > (h.weight, h.edge))
                    {
                        heaviest[i] = Some(on_path);
                    }
                }
            }
        }
        let mut cuts: BTreeSet<Edge> = BTreeSet::new();
        let mut swappers: Vec<WeightedEdge> = Vec::new();
        for (we, heaviest) in rest.into_iter().zip(heaviest) {
            // Intra-component candidates always close a cycle, so the
            // tree path between their endpoints is nonempty; a missing
            // heaviest edge means the swap machinery lost track of the
            // forest — surfaced as an error, never an abort.
            let heaviest = heaviest.ok_or(MsfError::NoConvergence)?;
            if heaviest.weight > we.weight {
                cuts.insert(heaviest.edge);
                swappers.push(we);
            }
            // else: `we` is a maximum-weight edge on its cycle —
            // discard permanently (cycle rule).
        }
        if cuts.is_empty() {
            return Ok(Vec::new());
        }
        let cut_list: Vec<Edge> = cuts.iter().copied().collect();
        let mut reactivated: Vec<WeightedEdge> = Vec::with_capacity(cut_list.len());
        for &e in &cut_list {
            // Every cut edge was just read out of the forest; losing
            // its weight entry is the same lost-forest invariant.
            let weight = self.weights.remove(&e).ok_or(MsfError::NoConvergence)?;
            reactivated.push(WeightedEdge { edge: e, weight });
        }
        let pieces = self.etf.batch_split(&cut_list, ctx);
        // Temporary component ids for the pieces (minimum member).
        let mut relabels = 0u64;
        for p in pieces {
            let members = self.etf.tour_members(p);
            // A memberless piece has nothing to relabel.
            let Some(&new_c) = members.first() else {
                continue;
            };
            for &v in members {
                self.comp[v as usize] = new_c;
            }
            relabels += 1;
        }
        ctx.sort(2 * relabels);
        ctx.broadcast(2);
        reactivated.extend(swappers);
        Ok(reactivated)
    }
}

// ----- snapshot persistence ---------------------------------------

impl mpc_snapshot::Persist for ExactMsf {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        self.comp.save(w);
        self.etf.save(w);
        self.weights.save(w);
        w.put_usize(self.last_iterations);
        self.seen.save(w);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let n = r.take_usize()?;
        let comp = Vec::<VertexId>::load(r)?;
        let etf = DistEtf::load(r)?;
        let weights = BTreeMap::<Edge, u64>::load(r)?;
        let last_iterations = r.take_usize()?;
        let seen = BTreeSet::<Edge>::load(r)?;
        // A forest on n vertices has at most n-1 edges.
        if comp.len() != n || weights.len() >= n.max(1) {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "exact-msf holds {} labels and {} forest edges for n = {n}",
                comp.len(),
                weights.len()
            )));
        }
        Ok(ExactMsf {
            n,
            comp,
            etf,
            weights,
            last_iterations,
            seen,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_etf::tour::validate;
    use mpc_graph::gen;
    use mpc_graph::oracle;
    use mpc_sim::MpcConfig;

    fn ctx_for(n: usize) -> MpcContext {
        MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 16).build())
    }

    fn check_exact(msf: &ExactMsf, all: &[WeightedEdge], n: usize) {
        let expect = oracle::msf_weight(n, all.iter().copied());
        assert_eq!(msf.weight(), expect, "MSF weight must match Kruskal");
        // Forest validity.
        let forest = msf.forest();
        let mut uf = UnionFind::new(n);
        for we in &forest {
            assert!(all.contains(we), "forest edge {we} never inserted");
            assert!(uf.union(we.edge.u(), we.edge.v()), "cycle at {we}");
        }
        assert_eq!(
            uf.component_count(),
            oracle::component_count(n, all.iter().map(|we| we.edge)),
            "forest must span"
        );
        validate(msf.etf_ref()).expect("tours valid");
    }

    impl ExactMsf {
        fn etf_ref(&self) -> &DistEtf {
            &self.etf
        }
    }

    #[test]
    fn triangle_swap() {
        let n = 4;
        let mut ctx = ctx_for(n);
        let mut msf = ExactMsf::new(n);
        let all = [
            WeightedEdge::new(0, 1, 10),
            WeightedEdge::new(1, 2, 1),
            WeightedEdge::new(0, 2, 2),
        ];
        msf.apply_batch(&WeightedBatch::inserting(all), &mut ctx)
            .unwrap();
        check_exact(&msf, &all, n);
        assert_eq!(msf.weight(), 3);
    }

    #[test]
    fn shared_path_max_double_swap() {
        // The counterexample to a single-pass Case-2: two candidates
        // whose tree paths share the same heaviest edge; an exact MSF
        // requires swapping twice (second-heaviest too).
        let n = 6;
        let mut ctx = ctx_for(n);
        let mut msf = ExactMsf::new(n);
        // Path 0-1-2-3 with weights 1, 100, 50.
        let base = [
            WeightedEdge::new(0, 1, 1),
            WeightedEdge::new(1, 2, 100),
            WeightedEdge::new(2, 3, 50),
        ];
        msf.apply_batch(&WeightedBatch::inserting(base), &mut ctx)
            .unwrap();
        // Candidates {0,2} w=2 and {1,3} w=3: both paths contain the
        // 100-edge; true MSF keeps {0,1},{0,2},{1,3} = 6.
        let extra = [WeightedEdge::new(0, 2, 2), WeightedEdge::new(1, 3, 3)];
        msf.apply_batch(&WeightedBatch::inserting(extra), &mut ctx)
            .unwrap();
        let all: Vec<WeightedEdge> = base.iter().chain(&extra).copied().collect();
        check_exact(&msf, &all, n);
        assert_eq!(msf.weight(), 6);
        assert!(msf.last_iterations() >= 2, "needs a second swap pass");
    }

    #[test]
    fn random_streams_match_kruskal() {
        for seed in 0..8 {
            let n = 32;
            let stream = gen::random_weighted_insert_stream(n, 6, 8, 50, seed);
            let mut ctx = ctx_for(n);
            let mut msf = ExactMsf::new(n);
            let mut all: Vec<WeightedEdge> = Vec::new();
            for batch in &stream.batches {
                msf.apply_batch(batch, &mut ctx).unwrap();
                all.extend(batch.insertions());
                check_exact(&msf, &all, n);
            }
        }
    }

    #[test]
    fn equal_weights_no_spurious_swaps() {
        let n = 8;
        let mut ctx = ctx_for(n);
        let mut msf = ExactMsf::new(n);
        let all: Vec<WeightedEdge> = (0..7u32)
            .map(|i| WeightedEdge::new(i, i + 1, 5))
            .chain([WeightedEdge::new(0, 7, 5)])
            .collect();
        msf.apply_batch(&WeightedBatch::inserting(all.clone()), &mut ctx)
            .unwrap();
        check_exact(&msf, &all, n);
        assert_eq!(msf.weight(), 35);
    }

    #[test]
    fn deletions_rejected() {
        let n = 4;
        let mut ctx = ctx_for(n);
        let mut msf = ExactMsf::new(n);
        let mut batch = WeightedBatch::new();
        batch.push(mpc_graph::update::WeightedUpdate::Delete(
            WeightedEdge::new(0, 1, 1),
        ));
        assert!(matches!(
            msf.apply_batch(&batch, &mut ctx),
            Err(MsfError::DeletionNotSupported(_))
        ));
    }

    #[test]
    fn duplicates_rejected() {
        let n = 4;
        let mut ctx = ctx_for(n);
        let mut msf = ExactMsf::new(n);
        msf.apply_batch(
            &WeightedBatch::inserting([WeightedEdge::new(0, 1, 1)]),
            &mut ctx,
        )
        .unwrap();
        assert!(matches!(
            msf.apply_batch(
                &WeightedBatch::inserting([WeightedEdge::new(0, 1, 2)]),
                &mut ctx,
            ),
            Err(MsfError::DuplicateEdge(_))
        ));
    }

    #[test]
    fn rounds_per_batch_bounded() {
        let n = 128;
        let stream = gen::random_weighted_insert_stream(n, 6, 12, 40, 3);
        let mut ctx = ctx_for(n);
        let mut msf = ExactMsf::new(n);
        for batch in &stream.batches {
            ctx.begin_phase("msf-batch");
            msf.apply_batch(batch, &mut ctx).unwrap();
            let r = ctx.end_phase();
            // O(iterations / φ) rounds; iterations observed small.
            let budget = (6 * msf.last_iterations().max(1) as u64 + 6)
                * ctx.config().round_budget_per_primitive();
            assert!(r.rounds <= budget, "{} > {budget}", r.rounds);
        }
    }
    #[test]
    fn from_graph_equals_kruskal_and_continues_dynamically() {
        use mpc_graph::gen;
        use mpc_graph::oracle;
        let n = 32;
        let stream = gen::random_weighted_insert_stream(n, 4, 10, 50, 77);
        let mut edges: Vec<WeightedEdge> = Vec::new();
        for b in &stream.batches {
            edges.extend(b.insertions());
        }
        let mut ctx = MpcContext::new(
            mpc_sim::MpcConfig::builder(n, 0.5)
                .local_capacity(1 << 14)
                .build(),
        );
        let mut msf =
            ExactMsf::from_graph(n, edges.iter().copied(), &mut ctx).expect("valid stream");
        assert_eq!(msf.weight(), oracle::msf_weight(n, edges.iter().copied()));
        // Dynamic continuation from the bootstrapped state.
        let extra = WeightedEdge::new(0, 31, 1);
        if !edges.iter().any(|w| w.edge == extra.edge) {
            msf.apply_batch(&WeightedBatch::inserting([extra]), &mut ctx)
                .expect("insert");
            edges.push(extra);
            assert_eq!(msf.weight(), oracle::msf_weight(n, edges.iter().copied()));
        }
    }
}
