//! `(1+ε)`-approximate minimum spanning forest under arbitrary
//! batches (paper Section 7.2, Theorem 7.1(ii)).
//!
//! The \[CRT'05\] threshold reduction: maintain connectivity in the
//! `t+1` subgraphs `G_i` (edges of weight `≤ (1+ε)^i`,
//! `t = ⌈log_{1+ε} W⌉`). The MSF weight satisfies
//!
//! ```text
//! w ≈ (n − cc(G_t)) + Σ_{i=0}^{t-1} λ_i · (cc(G_i) − cc(G_t)),
//!     λ_i = (1+ε)^{i+1} − (1+ε)^i,
//! ```
//!
//! which over-counts by at most a `(1+ε)` factor (the disconnected-
//! graph generalization of the paper's Equation (1)). The forest
//! variant (Section 7.2.2) additionally reports the edge set
//! `{e ∈ F_i : comp_{i-1}(u) ≠ comp_{i-1}(v)}`.

use mpc_graph::ids::{Edge, VertexId};
use mpc_graph::update::{Batch, Update, WeightedBatch};
use mpc_sim::MpcContext;
use mpc_stream_core::{Connectivity, ConnectivityConfig, ConnectivityError};

/// Shared threshold machinery for the weight and forest variants.
#[derive(Debug, Clone)]
struct ThresholdStack {
    n: usize,
    eps: f64,
    /// `thresholds[i] = (1+ε)^i`, so instance `i` holds edges of
    /// weight `≤ thresholds[i]`.
    thresholds: Vec<f64>,
    instances: Vec<Connectivity>,
}

impl ThresholdStack {
    fn new(n: usize, eps: f64, max_weight: u64, seed: u64) -> Self {
        assert!(eps > 0.0, "ε must be positive, got {eps}");
        assert!(max_weight >= 1, "weights live in [1, W] with W ≥ 1");
        let mut thresholds = vec![1.0];
        while *thresholds.last().expect("nonempty") < max_weight as f64 {
            thresholds.push(thresholds.last().expect("nonempty") * (1.0 + eps));
        }
        let instances = (0..thresholds.len())
            .map(|i| {
                Connectivity::new(
                    n,
                    ConnectivityConfig::default(),
                    seed.wrapping_add(1 + i as u64),
                )
            })
            .collect();
        ThresholdStack {
            n,
            eps,
            thresholds,
            instances,
        }
    }

    fn apply_batch(
        &mut self,
        batch: &WeightedBatch,
        ctx: &mut MpcContext,
    ) -> Result<(), ConnectivityError> {
        // The t+1 threshold instances are independent and run in
        // parallel (the paper's Section 7.2 construction): the batch
        // costs the maximum instance's rounds, not the sum.
        ctx.parallel_begin();
        let result = (|| {
            for (i, conn) in self.instances.iter_mut().enumerate() {
                let w_i = self.thresholds[i];
                let sub: Batch = batch
                    .iter()
                    .filter(|u| (u.weighted_edge().weight as f64) <= w_i)
                    .map(|u| u.unweighted())
                    .collect();
                if !sub.is_empty() {
                    conn.apply_batch(&sub, ctx)?;
                }
                ctx.parallel_branch();
            }
            Ok(())
        })();
        ctx.parallel_end();
        result
    }

    fn weight_estimate(&self) -> f64 {
        let t = self.thresholds.len() - 1;
        let cc_top = self.instances[t].component_count() as f64;
        let mut w = self.n as f64 - cc_top;
        for i in 0..t {
            let lambda = self.thresholds[i] * self.eps;
            let cc_i = self.instances[i].component_count() as f64;
            w += lambda * (cc_i - cc_top);
        }
        w
    }

    fn words(&self) -> u64 {
        self.instances.iter().map(Connectivity::words).sum()
    }

    fn sampler_failure_count(&self) -> u64 {
        self.instances
            .iter()
            .map(Connectivity::sampler_failure_count)
            .sum()
    }
}

/// `(1+ε)`-approximation to the MSF **weight** under arbitrary
/// batches (Section 7.2.1).
///
/// # Examples
///
/// ```
/// use mpc_msf::ApproxMsfWeight;
/// use mpc_graph::ids::WeightedEdge;
/// use mpc_graph::update::WeightedBatch;
/// use mpc_sim::{MpcConfig, MpcContext};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctx = MpcContext::new(
///     MpcConfig::builder(8, 0.5).local_capacity(1 << 14).build(),
/// );
/// let mut aw = ApproxMsfWeight::new(8, 0.25, 16, 42);
/// aw.apply_batch(
///     &WeightedBatch::inserting([
///         WeightedEdge::new(0, 1, 4),
///         WeightedEdge::new(1, 2, 2),
///     ]),
///     &mut ctx,
/// )?;
/// let est = aw.weight_estimate();
/// assert!(est >= 6.0 && est <= 6.0 * 1.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ApproxMsfWeight {
    stack: ThresholdStack,
}

impl ApproxMsfWeight {
    /// Creates the estimator for weights in `[1, max_weight]`.
    ///
    /// # Panics
    ///
    /// Panics if `eps ≤ 0` or `max_weight == 0`.
    pub fn new(n: usize, eps: f64, max_weight: u64, seed: u64) -> Self {
        ApproxMsfWeight {
            stack: ThresholdStack::new(n, eps, max_weight, seed),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.stack.n
    }

    /// Number of threshold instances (`t + 1`).
    pub fn instance_count(&self) -> usize {
        self.stack.instances.len()
    }

    /// Cumulative `ℓ0`-sampler failures across all threshold
    /// instances.
    pub fn sampler_failure_count(&self) -> u64 {
        self.stack.sampler_failure_count()
    }

    /// Processes a weighted batch, routing each update to every
    /// threshold instance whose cutoff admits it.
    ///
    /// # Errors
    ///
    /// Propagates connectivity errors from the instances.
    pub fn apply_batch(
        &mut self,
        batch: &WeightedBatch,
        ctx: &mut MpcContext,
    ) -> Result<(), ConnectivityError> {
        self.stack.apply_batch(batch, ctx)
    }

    /// The current `(1+ε)`-approximate MSF weight.
    pub fn weight_estimate(&self) -> f64 {
        self.stack.weight_estimate()
    }

    /// Total memory in words across all instances.
    pub fn words(&self) -> u64 {
        self.stack.words()
    }
}

/// `(1+ε)`-approximate MSF **forest** under arbitrary batches
/// (Section 7.2.2): reports an explicit spanning forest whose true
/// weight is within `(1+ε)` of optimal.
#[derive(Debug, Clone)]
pub struct ApproxMsfForest {
    stack: ThresholdStack,
}

impl ApproxMsfForest {
    /// Creates the structure for weights in `[1, max_weight]`.
    ///
    /// # Panics
    ///
    /// Panics if `eps ≤ 0` or `max_weight == 0`.
    pub fn new(n: usize, eps: f64, max_weight: u64, seed: u64) -> Self {
        ApproxMsfForest {
            stack: ThresholdStack::new(n, eps, max_weight, seed),
        }
    }

    /// Processes a weighted batch.
    ///
    /// # Errors
    ///
    /// Propagates connectivity errors from the instances.
    pub fn apply_batch(
        &mut self,
        batch: &WeightedBatch,
        ctx: &mut MpcContext,
    ) -> Result<(), ConnectivityError> {
        self.stack.apply_batch(batch, ctx)
    }

    /// The approximate MSF: a level-by-level sweep adds each level's
    /// forest edges that still connect new components, tagging each
    /// edge with the level's weight cutoff (an upper bound on its
    /// true weight, used by the analysis).
    ///
    /// The paper's one-shot per-edge test (`C_{i-1}[u] ≠ C_{i-1}[v]`)
    /// can select two level-`i` forest edges crossing the *same*
    /// level-`i-1` cut (the level forests are maintained
    /// independently), which closes a cycle. The sweep below is the
    /// standard repair: it keeps exactly `cc(G_{i-1}) − cc(G_i)`
    /// edges per level — the count the weight analysis relies on —
    /// while guaranteeing a forest. Cost: `t` dependent rounds per
    /// query instead of one (documented deviation, see DESIGN.md).
    pub fn forest(&self) -> Vec<(Edge, f64)> {
        let mut out: Vec<(Edge, f64)> = Vec::new();
        let mut uf = mpc_graph::oracle::UnionFind::new(self.stack.n);
        for (i, conn) in self.stack.instances.iter().enumerate() {
            for e in conn.spanning_forest() {
                if uf.union(e.u(), e.v()) {
                    out.push((e, self.stack.thresholds[i]));
                }
            }
        }
        out
    }

    /// Component id in the top (full) graph.
    pub fn component_of(&self, v: VertexId) -> VertexId {
        self.stack
            .instances
            .last()
            // lint: allow(panic-reachability): ThresholdStack construction always materializes at least one instance
            .expect("at least one instance")
            .component_of(v)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.stack.n
    }

    /// Cumulative `ℓ0`-sampler failures across all threshold
    /// instances.
    pub fn sampler_failure_count(&self) -> u64 {
        self.stack.sampler_failure_count()
    }

    /// Total memory in words across all instances.
    pub fn words(&self) -> u64 {
        self.stack.words()
    }
}

impl mpc_stream_core::Maintain for ApproxMsfWeight {
    fn save_state(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        mpc_snapshot::Persist::save(self, w);
    }

    fn name(&self) -> &'static str {
        "msf-approx-weight"
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        ApproxMsfWeight::words(self)
    }

    fn l0_failures(&self) -> u64 {
        self.sampler_failure_count()
    }

    /// Unweighted batches are interpreted with unit weights.
    fn ingest(
        &mut self,
        batch: &Batch,
        ctx: &mut MpcContext,
    ) -> Result<(), mpc_sim::MpcStreamError> {
        self.ingest_weighted(&unit_weighted(batch), ctx)
    }

    fn ingest_weighted(
        &mut self,
        batch: &WeightedBatch,
        ctx: &mut MpcContext,
    ) -> Result<(), mpc_sim::MpcStreamError> {
        ApproxMsfWeight::apply_batch(self, batch, ctx)?;
        Ok(())
    }

    fn supports(&self, query: &mpc_stream_core::QueryRequest) -> bool {
        use mpc_stream_core::QueryRequest;
        matches!(query, QueryRequest::ForestWeight)
    }

    /// The estimate reads every threshold instance's component count:
    /// the label sorts run in parallel across the `t + 1` instances
    /// (one sort's rounds), and the `t + 1` counts converge-cast to
    /// the coordinator for the weighted sum of Equation (1).
    fn answer(
        &mut self,
        query: &mpc_stream_core::QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<mpc_stream_core::QueryResponse, mpc_sim::MpcStreamError> {
        use mpc_stream_core::{QueryRequest, QueryResponse};
        match *query {
            QueryRequest::ForestWeight => {
                ctx.sort(self.stack.n as u64);
                ctx.converge_cast(self.instance_count() as u64, 1);
                Ok(QueryResponse::Weight(self.weight_estimate()))
            }
            _ => Err(mpc_stream_core::unsupported_query(
                "msf-approx-weight",
                query,
            )),
        }
    }
}

impl mpc_stream_core::Maintain for ApproxMsfForest {
    fn save_state(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        mpc_snapshot::Persist::save(self, w);
    }

    fn name(&self) -> &'static str {
        "msf-approx-forest"
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        ApproxMsfForest::words(self)
    }

    fn l0_failures(&self) -> u64 {
        self.sampler_failure_count()
    }

    /// Unweighted batches are interpreted with unit weights.
    fn ingest(
        &mut self,
        batch: &Batch,
        ctx: &mut MpcContext,
    ) -> Result<(), mpc_sim::MpcStreamError> {
        self.ingest_weighted(&unit_weighted(batch), ctx)
    }

    fn ingest_weighted(
        &mut self,
        batch: &WeightedBatch,
        ctx: &mut MpcContext,
    ) -> Result<(), mpc_sim::MpcStreamError> {
        ApproxMsfForest::apply_batch(self, batch, ctx)?;
        Ok(())
    }

    fn supports(&self, query: &mpc_stream_core::QueryRequest) -> bool {
        use mpc_stream_core::QueryRequest;
        matches!(
            query,
            QueryRequest::SpanningForest
                | QueryRequest::ForestWeight
                | QueryRequest::ComponentOf(..)
        )
    }

    /// The forest report pays the documented `t` dependent rounds of
    /// the level-by-level sweep (one broadcast per level) plus the
    /// output sort; the weight estimate and point queries charge like
    /// the weight variant.
    fn answer(
        &mut self,
        query: &mpc_stream_core::QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<mpc_stream_core::QueryResponse, mpc_sim::MpcStreamError> {
        use mpc_stream_core::{ensure_vertex_in, QueryRequest, QueryResponse};
        match *query {
            QueryRequest::SpanningForest => {
                for _ in 0..self.stack.instances.len() {
                    ctx.broadcast(1);
                }
                let forest: Vec<Edge> = self.forest().into_iter().map(|(e, _)| e).collect();
                ctx.sort(2 * forest.len() as u64);
                Ok(QueryResponse::Edges(forest))
            }
            QueryRequest::ForestWeight => {
                ctx.sort(self.stack.n as u64);
                ctx.converge_cast(self.stack.instances.len() as u64, 1);
                Ok(QueryResponse::Weight(self.stack.weight_estimate()))
            }
            QueryRequest::ComponentOf(v) => {
                ensure_vertex_in(v, self.stack.n)?;
                ctx.exchange(2);
                Ok(QueryResponse::Vertex(self.component_of(v)))
            }
            _ => Err(mpc_stream_core::unsupported_query(
                "msf-approx-forest",
                query,
            )),
        }
    }
}

/// Convenience: lift an unweighted batch into a weighted one with
/// unit weights (useful when mixing with connectivity workloads).
pub fn unit_weighted(batch: &Batch) -> WeightedBatch {
    batch
        .iter()
        .map(|u| match u {
            Update::Insert(e) => {
                mpc_graph::update::WeightedUpdate::Insert(mpc_graph::ids::WeightedEdge {
                    edge: e,
                    weight: 1,
                })
            }
            Update::Delete(e) => {
                mpc_graph::update::WeightedUpdate::Delete(mpc_graph::ids::WeightedEdge {
                    edge: e,
                    weight: 1,
                })
            }
        })
        .collect()
}

// ----- snapshot persistence ---------------------------------------

impl mpc_snapshot::Persist for ThresholdStack {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        w.put_f64(self.eps);
        // The threshold ladder is saved verbatim (not recomputed from
        // ε) so the restored instance compares weights against
        // bit-identical floats.
        self.thresholds.save(w);
        self.instances.save(w);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let n = r.take_usize()?;
        let eps = r.take_f64()?;
        let thresholds = Vec::<f64>::load(r)?;
        let instances = Vec::<Connectivity>::load(r)?;
        if !eps.is_finite()
            || eps <= 0.0
            || thresholds.is_empty()
            || thresholds.len() != instances.len()
        {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "threshold stack holds {} thresholds / {} instances at eps {eps}",
                thresholds.len(),
                instances.len()
            )));
        }
        Ok(ThresholdStack {
            n,
            eps,
            thresholds,
            instances,
        })
    }
}

impl mpc_snapshot::Persist for ApproxMsfWeight {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        self.stack.save(w);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        Ok(ApproxMsfWeight {
            stack: ThresholdStack::load(r)?,
        })
    }
}

impl mpc_snapshot::Persist for ApproxMsfForest {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        self.stack.save(w);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        Ok(ApproxMsfForest {
            stack: ThresholdStack::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::gen;
    use mpc_graph::ids::WeightedEdge;
    use mpc_graph::oracle;
    use mpc_sim::MpcConfig;
    use std::collections::BTreeMap;

    fn ctx_for(n: usize) -> MpcContext {
        MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 16).build())
    }

    #[test]
    fn weight_estimate_within_eps_on_random_graphs() {
        for (seed, eps) in [(1u64, 0.25f64), (2, 0.5), (3, 0.1)] {
            let n = 24;
            let max_w = 32;
            let stream = gen::random_weighted_insert_stream(n, 4, 10, max_w, seed);
            let mut ctx = ctx_for(n);
            let mut aw = ApproxMsfWeight::new(n, eps, max_w, seed);
            let mut all: Vec<WeightedEdge> = Vec::new();
            for batch in &stream.batches {
                aw.apply_batch(batch, &mut ctx).unwrap();
                all.extend(batch.insertions());
                let exact = oracle::msf_weight(n, all.iter().copied()) as f64;
                let est = aw.weight_estimate();
                assert!(
                    est >= exact - 1e-6 && est <= exact * (1.0 + eps) + 1e-6,
                    "seed {seed} eps {eps}: est {est} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn weight_estimate_tracks_deletions() {
        let n = 16;
        let max_w = 16;
        let stream = gen::random_weighted_stream(n, 8, 6, 0.6, max_w, 7);
        let mut ctx = ctx_for(n);
        let mut aw = ApproxMsfWeight::new(n, 0.25, max_w, 7);
        let mut live: BTreeMap<Edge, u64> = BTreeMap::new();
        for batch in &stream.batches {
            aw.apply_batch(batch, &mut ctx).unwrap();
            for u in batch.iter() {
                let we = u.weighted_edge();
                if u.is_insert() {
                    live.insert(we.edge, we.weight);
                } else {
                    live.remove(&we.edge);
                }
            }
            let all: Vec<WeightedEdge> = live
                .iter()
                .map(|(&edge, &weight)| WeightedEdge { edge, weight })
                .collect();
            let exact = oracle::msf_weight(n, all.iter().copied()) as f64;
            let est = aw.weight_estimate();
            assert!(
                est >= exact - 1e-6 && est <= exact * 1.25 + 1e-6,
                "est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn forest_variant_reports_near_optimal_forest() {
        let n = 20;
        let max_w = 20;
        let stream = gen::random_weighted_insert_stream(n, 4, 8, max_w, 11);
        let mut ctx = ctx_for(n);
        let mut af = ApproxMsfForest::new(n, 0.25, max_w, 11);
        let mut live: BTreeMap<Edge, u64> = BTreeMap::new();
        for batch in &stream.batches {
            af.apply_batch(batch, &mut ctx).unwrap();
            for we in batch.insertions() {
                live.insert(we.edge, we.weight);
            }
        }
        let all: Vec<WeightedEdge> = live
            .iter()
            .map(|(&edge, &weight)| WeightedEdge { edge, weight })
            .collect();
        let forest = af.forest();
        // Structure: spanning forest of the live graph.
        let mut uf = oracle::UnionFind::new(n);
        for (e, _) in &forest {
            assert!(live.contains_key(e), "forest edge {e} not live");
            assert!(uf.union(e.u(), e.v()), "cycle at {e}");
        }
        assert_eq!(
            uf.component_count(),
            oracle::component_count(n, live.keys().copied()),
            "forest spans"
        );
        // True weight within (1+ε) of Kruskal.
        let true_weight: u64 = forest.iter().map(|(e, _)| live[e]).sum();
        let exact = oracle::msf_weight(n, all.iter().copied());
        assert!(
            true_weight as f64 <= exact as f64 * 1.25 + 1e-6,
            "forest weight {true_weight} vs exact {exact}"
        );
        assert!(true_weight >= exact);
    }

    #[test]
    fn instance_count_scales_with_eps() {
        let coarse = ApproxMsfWeight::new(8, 1.0, 1000, 1);
        let fine = ApproxMsfWeight::new(8, 0.1, 1000, 1);
        assert!(fine.instance_count() > coarse.instance_count());
        assert!(fine.words() > 0);
    }

    #[test]
    #[should_panic(expected = "ε must be positive")]
    fn zero_eps_panics() {
        let _ = ApproxMsfWeight::new(8, 0.0, 10, 1);
    }

    #[test]
    fn empty_graph_estimates_zero() {
        let aw = ApproxMsfWeight::new(8, 0.5, 10, 1);
        assert_eq!(aw.weight_estimate(), 0.0);
    }
}
