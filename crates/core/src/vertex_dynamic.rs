//! Vertex insertions and deletions on top of [`Connectivity`].
//!
//! The paper fixes the vertex set `V` but notes (Section 1.2) that
//! "it is rather easy to relax this requirement and allow insertions
//! and deletions of **isolated** vertices, as long as a batch of
//! updates can fit into a local machine", with the machines — and
//! hence the local memory `s` — staying the same. This module is
//! that relaxation: a [`VertexDynamicConnectivity`] owns a
//! [`Connectivity`] instance sized to a fixed **capacity** (the
//! paper's "the MPC machines stay the same") and maintains an active
//! vertex set inside it. Inactive vertices are isolated singletons in
//! the inner structure and cost nothing beyond their component-label
//! slot; freed ids are recycled.

use crate::connectivity::{Connectivity, ConnectivityConfig, ConnectivityError};
use mpc_graph::ids::{Edge, VertexId};
use mpc_graph::update::Batch;
use mpc_sim::MpcContext;

/// Errors from [`VertexDynamicConnectivity`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VertexDynError {
    /// All `capacity` vertex slots are active.
    CapacityExhausted(usize),
    /// The vertex is not currently active.
    NotActive(VertexId),
    /// Only isolated vertices may be removed (the paper's contract);
    /// this one still has incident live edges.
    NotIsolated(VertexId, u32),
    /// An edge update touches an inactive vertex.
    InactiveEndpoint(Edge, VertexId),
    /// The inner connectivity structure rejected the batch.
    Conn(ConnectivityError),
}

impl std::fmt::Display for VertexDynError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VertexDynError::CapacityExhausted(cap) => {
                write!(f, "all {cap} vertex slots are active")
            }
            VertexDynError::NotActive(v) => write!(f, "vertex {v} is not active"),
            VertexDynError::NotIsolated(v, d) => {
                write!(
                    f,
                    "vertex {v} has {d} live edges; only isolated vertices can be removed"
                )
            }
            VertexDynError::InactiveEndpoint(e, v) => {
                write!(f, "edge {e} touches inactive vertex {v}")
            }
            VertexDynError::Conn(err) => write!(f, "connectivity: {err}"),
        }
    }
}

impl std::error::Error for VertexDynError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VertexDynError::Conn(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ConnectivityError> for VertexDynError {
    fn from(err: ConnectivityError) -> Self {
        VertexDynError::Conn(err)
    }
}

impl From<VertexDynError> for mpc_sim::MpcStreamError {
    fn from(e: VertexDynError) -> Self {
        match e {
            VertexDynError::CapacityExhausted(cap) => mpc_sim::MpcStreamError::BudgetExhausted(
                format!("all {cap} vertex slots are active"),
            ),
            VertexDynError::NotActive(_)
            | VertexDynError::NotIsolated(_, _)
            | VertexDynError::InactiveEndpoint(_, _) => {
                mpc_sim::MpcStreamError::InvalidBatch(e.to_string())
            }
            VertexDynError::Conn(inner) => inner.into(),
        }
    }
}

/// Batch-dynamic connectivity with a dynamic vertex set (paper
/// Section 1.2's relaxation).
///
/// # Examples
///
/// ```
/// use mpc_stream_core::{VertexDynamicConnectivity, ConnectivityConfig};
/// use mpc_graph::ids::Edge;
/// use mpc_graph::update::Batch;
/// use mpc_sim::{MpcConfig, MpcContext};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctx = MpcContext::new(
///     MpcConfig::builder(16, 0.5).local_capacity(1 << 14).build(),
/// );
/// let mut vd = VertexDynamicConnectivity::with_capacity(
///     16,
///     ConnectivityConfig::default(),
///     7,
/// );
/// let a = vd.add_vertex(&mut ctx)?;
/// let b = vd.add_vertex(&mut ctx)?;
/// vd.apply_batch(&Batch::inserting([Edge::new(a, b)]), &mut ctx)?;
/// assert!(vd.connected(a, b)?);
/// // A vertex must be isolated before it can leave.
/// assert!(vd.remove_vertex(b, &mut ctx).is_err());
/// vd.apply_batch(&Batch::deleting([Edge::new(a, b)]), &mut ctx)?;
/// vd.remove_vertex(b, &mut ctx)?;
/// assert_eq!(vd.active_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VertexDynamicConnectivity {
    inner: Connectivity,
    active: Vec<bool>,
    /// Recycled ids, popped before fresh ones.
    free: Vec<VertexId>,
    /// Next never-used id.
    next_fresh: u32,
    active_count: usize,
    /// Live-edge degree per slot, to enforce isolated removal.
    degree: Vec<u32>,
}

impl VertexDynamicConnectivity {
    /// Creates the structure with `capacity` vertex slots and no
    /// active vertices.
    pub fn with_capacity(capacity: usize, cfg: ConnectivityConfig, seed: u64) -> Self {
        VertexDynamicConnectivity {
            inner: Connectivity::new(capacity, cfg, seed),
            active: vec![false; capacity],
            free: Vec::new(),
            next_fresh: 0,
            active_count: 0,
            degree: vec![0; capacity],
        }
    }

    /// The fixed slot capacity (the paper's unchanging machine
    /// layout).
    pub fn capacity(&self) -> usize {
        self.active.len()
    }

    /// Number of currently active vertices.
    pub fn active_count(&self) -> usize {
        self.active_count
    }

    /// Whether `v` is an active vertex.
    pub fn is_active(&self, v: VertexId) -> bool {
        (v as usize) < self.active.len() && self.active[v as usize]
    }

    /// Live-edge degree of an active vertex.
    pub fn degree(&self, v: VertexId) -> Result<u32, VertexDynError> {
        if !self.is_active(v) {
            return Err(VertexDynError::NotActive(v));
        }
        Ok(self.degree[v as usize])
    }

    /// The inner fixed-capacity structure.
    pub fn connectivity(&self) -> &Connectivity {
        &self.inner
    }

    /// Cumulative `ℓ0`-sampler failures in the inner structure (the
    /// failure-probability envelope of the replacement-edge search).
    pub fn sampler_failure_count(&self) -> u64 {
        self.inner.sampler_failure_count()
    }

    /// Activates a vertex slot (recycling freed ids first) and
    /// returns its id — `O(1)` rounds (one broadcast of the
    /// activation).
    ///
    /// # Errors
    ///
    /// [`VertexDynError::CapacityExhausted`] when every slot is
    /// active.
    pub fn add_vertex(&mut self, ctx: &mut MpcContext) -> Result<VertexId, VertexDynError> {
        let id = if let Some(v) = self.free.pop() {
            v
        } else if (self.next_fresh as usize) < self.active.len() {
            let v = self.next_fresh;
            self.next_fresh += 1;
            v
        } else {
            return Err(VertexDynError::CapacityExhausted(self.active.len()));
        };
        self.active[id as usize] = true;
        self.active_count += 1;
        ctx.exchange(1);
        ctx.broadcast(1);
        Ok(id)
    }

    /// Activates `count` vertices in one batch — `O(1)` rounds total.
    pub fn add_vertices(
        &mut self,
        count: usize,
        ctx: &mut MpcContext,
    ) -> Result<Vec<VertexId>, VertexDynError> {
        if self.active_count + count > self.active.len() {
            return Err(VertexDynError::CapacityExhausted(self.active.len()));
        }
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            let id = if let Some(v) = self.free.pop() {
                v
            } else {
                let v = self.next_fresh;
                self.next_fresh += 1;
                v
            };
            self.active[id as usize] = true;
            self.active_count += 1;
            ids.push(id);
        }
        ctx.exchange(count as u64);
        ctx.broadcast(1);
        Ok(ids)
    }

    /// Deactivates an **isolated** active vertex — `O(1)` rounds.
    ///
    /// # Errors
    ///
    /// [`VertexDynError::NotActive`] or
    /// [`VertexDynError::NotIsolated`].
    pub fn remove_vertex(
        &mut self,
        v: VertexId,
        ctx: &mut MpcContext,
    ) -> Result<(), VertexDynError> {
        if !self.is_active(v) {
            return Err(VertexDynError::NotActive(v));
        }
        if self.degree[v as usize] > 0 {
            return Err(VertexDynError::NotIsolated(v, self.degree[v as usize]));
        }
        self.active[v as usize] = false;
        self.active_count -= 1;
        self.free.push(v);
        ctx.exchange(1);
        ctx.broadcast(1);
        Ok(())
    }

    /// Applies an edge-update batch after checking every endpoint is
    /// active; delegates to [`Connectivity::apply_batch`].
    ///
    /// # Errors
    ///
    /// [`VertexDynError::InactiveEndpoint`] (state unchanged), or any
    /// inner [`ConnectivityError`].
    pub fn apply_batch(
        &mut self,
        batch: &Batch,
        ctx: &mut MpcContext,
    ) -> Result<(), VertexDynError> {
        for u in batch.iter() {
            let e = u.edge();
            for x in [e.u(), e.v()] {
                if !self.is_active(x) {
                    return Err(VertexDynError::InactiveEndpoint(e, x));
                }
            }
        }
        self.inner.apply_batch(batch, ctx)?;
        for u in batch.iter() {
            let e = u.edge();
            if u.is_insert() {
                self.degree[e.u() as usize] += 1;
                self.degree[e.v() as usize] += 1;
            } else {
                self.degree[e.u() as usize] -= 1;
                self.degree[e.v() as usize] -= 1;
            }
        }
        Ok(())
    }

    /// Whether two active vertices are connected.
    ///
    /// # Errors
    ///
    /// [`VertexDynError::NotActive`] for an inactive endpoint.
    pub fn connected(&self, u: VertexId, v: VertexId) -> Result<bool, VertexDynError> {
        for x in [u, v] {
            if !self.is_active(x) {
                return Err(VertexDynError::NotActive(x));
            }
        }
        Ok(self.inner.connected(u, v))
    }

    /// Component id of an active vertex.
    pub fn component_of(&self, v: VertexId) -> Result<VertexId, VertexDynError> {
        if !self.is_active(v) {
            return Err(VertexDynError::NotActive(v));
        }
        Ok(self.inner.component_of(v))
    }

    /// Number of connected components **among active vertices**.
    /// Inactive slots are isolated singletons inside the inner
    /// structure and are excluded.
    pub fn component_count(&self) -> usize {
        let inactive = self.capacity() - self.active_count;
        self.inner.component_count() - inactive
    }

    /// The maintained spanning forest (only touches active vertices).
    pub fn spanning_forest(&self) -> Vec<Edge> {
        self.inner.spanning_forest()
    }

    /// Memory footprint in words: inner structure plus the activity
    /// bookkeeping (`O(capacity)`).
    pub fn words(&self) -> u64 {
        self.inner.words() + 2 * self.capacity() as u64
    }
}

// ----- snapshot persistence ---------------------------------------

impl mpc_snapshot::Persist for VertexDynamicConnectivity {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        self.inner.save(w);
        self.active.save(w);
        self.free.save(w);
        w.put_u32(self.next_fresh);
        w.put_usize(self.active_count);
        self.degree.save(w);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let inner = Connectivity::load(r)?;
        let active = Vec::<bool>::load(r)?;
        let free = Vec::<VertexId>::load(r)?;
        let next_fresh = r.take_u32()?;
        let active_count = r.take_usize()?;
        let degree = Vec::<u32>::load(r)?;
        let capacity = inner.vertex_count();
        if active.len() != capacity || degree.len() != capacity {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "vertex-dynamic tables cover {}/{} of {capacity} slots",
                active.len(),
                degree.len()
            )));
        }
        if next_fresh as usize > capacity || active_count != active.iter().filter(|&&b| b).count() {
            return Err(mpc_snapshot::SnapshotError::Corrupt(
                "vertex-dynamic slot bookkeeping is inconsistent".into(),
            ));
        }
        Ok(VertexDynamicConnectivity {
            inner,
            active,
            free,
            next_fresh,
            active_count,
            degree,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::oracle;
    use mpc_sim::MpcConfig;

    fn ctx() -> MpcContext {
        MpcContext::new(MpcConfig::builder(32, 0.5).local_capacity(1 << 15).build())
    }

    fn vd(cap: usize) -> VertexDynamicConnectivity {
        VertexDynamicConnectivity::with_capacity(cap, ConnectivityConfig::default(), 99)
    }

    #[test]
    fn starts_empty() {
        let v = vd(8);
        assert_eq!(v.capacity(), 8);
        assert_eq!(v.active_count(), 0);
        assert_eq!(v.component_count(), 0);
        assert!(!v.is_active(0));
    }

    #[test]
    fn add_assigns_sequential_then_recycled_ids() {
        let mut c = ctx();
        let mut v = vd(4);
        let a = v.add_vertex(&mut c).unwrap();
        let b = v.add_vertex(&mut c).unwrap();
        assert_eq!((a, b), (0, 1));
        v.remove_vertex(a, &mut c).unwrap();
        // Freed id 0 is reused before fresh id 2.
        assert_eq!(v.add_vertex(&mut c).unwrap(), 0);
        assert_eq!(v.add_vertex(&mut c).unwrap(), 2);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut c = ctx();
        let mut v = vd(2);
        v.add_vertices(2, &mut c).unwrap();
        assert_eq!(
            v.add_vertex(&mut c),
            Err(VertexDynError::CapacityExhausted(2))
        );
        assert_eq!(
            v.add_vertices(1, &mut c),
            Err(VertexDynError::CapacityExhausted(2))
        );
    }

    #[test]
    fn edges_require_active_endpoints() {
        let mut c = ctx();
        let mut v = vd(4);
        let a = v.add_vertex(&mut c).unwrap();
        let err = v
            .apply_batch(&Batch::inserting([Edge::new(a, 3)]), &mut c)
            .unwrap_err();
        assert_eq!(err, VertexDynError::InactiveEndpoint(Edge::new(a, 3), 3));
        assert_eq!(v.connectivity().live_edge_count(), 0);
    }

    #[test]
    fn removal_requires_isolation() {
        let mut c = ctx();
        let mut v = vd(4);
        let ids = v.add_vertices(3, &mut c).unwrap();
        v.apply_batch(&Batch::inserting([Edge::new(ids[0], ids[1])]), &mut c)
            .unwrap();
        assert_eq!(
            v.remove_vertex(ids[0], &mut c),
            Err(VertexDynError::NotIsolated(ids[0], 1))
        );
        v.apply_batch(&Batch::deleting([Edge::new(ids[0], ids[1])]), &mut c)
            .unwrap();
        v.remove_vertex(ids[0], &mut c).unwrap();
        assert_eq!(
            v.remove_vertex(ids[0], &mut c),
            Err(VertexDynError::NotActive(ids[0]))
        );
    }

    #[test]
    fn component_count_ignores_inactive_slots() {
        let mut c = ctx();
        let mut v = vd(8);
        let ids = v.add_vertices(4, &mut c).unwrap();
        assert_eq!(v.component_count(), 4);
        v.apply_batch(
            &Batch::inserting([Edge::new(ids[0], ids[1]), Edge::new(ids[2], ids[3])]),
            &mut c,
        )
        .unwrap();
        assert_eq!(v.component_count(), 2);
        v.apply_batch(&Batch::inserting([Edge::new(ids[1], ids[2])]), &mut c)
            .unwrap();
        assert_eq!(v.component_count(), 1);
    }

    #[test]
    fn queries_reject_inactive_vertices() {
        let mut c = ctx();
        let mut v = vd(4);
        let a = v.add_vertex(&mut c).unwrap();
        assert_eq!(v.connected(a, 2), Err(VertexDynError::NotActive(2)));
        assert_eq!(v.component_of(3), Err(VertexDynError::NotActive(3)));
        assert_eq!(v.degree(2), Err(VertexDynError::NotActive(2)));
        assert_eq!(v.degree(a), Ok(0));
    }

    #[test]
    fn churn_matches_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        let cap = 24;
        let mut c = ctx();
        let mut v = vd(cap);
        // Reference: live edges + active set.
        let mut live: Vec<Edge> = Vec::new();
        let mut active: Vec<VertexId> = Vec::new();
        for _step in 0..60 {
            let action = rng.gen_range(0..4);
            match action {
                0 if v.active_count() < cap => {
                    active.push(v.add_vertex(&mut c).unwrap());
                }
                1 if active.len() >= 2 => {
                    let a = active[rng.gen_range(0..active.len())];
                    let b = active[rng.gen_range(0..active.len())];
                    if a != b && !live.contains(&Edge::new(a, b)) {
                        let e = Edge::new(a, b);
                        v.apply_batch(&Batch::inserting([e]), &mut c).unwrap();
                        live.push(e);
                    }
                }
                2 if !live.is_empty() => {
                    let e = live.swap_remove(rng.gen_range(0..live.len()));
                    v.apply_batch(&Batch::deleting([e]), &mut c).unwrap();
                }
                3 if !active.is_empty() => {
                    let i = rng.gen_range(0..active.len());
                    let cand = active[i];
                    if live.iter().all(|e| !e.touches(cand)) {
                        v.remove_vertex(cand, &mut c).unwrap();
                        active.swap_remove(i);
                    }
                }
                _ => {}
            }
            // Cross-check connectivity among active vertices.
            let labels = oracle::components(cap, live.iter().copied());
            for &a in &active {
                for &b in &active {
                    assert_eq!(
                        v.connected(a, b).unwrap(),
                        labels[a as usize] == labels[b as usize],
                        "pair ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn errors_display() {
        use std::error::Error;
        assert!(VertexDynError::CapacityExhausted(4)
            .to_string()
            .contains("4"));
        assert!(VertexDynError::NotActive(3)
            .to_string()
            .contains("not active"));
        assert!(VertexDynError::NotIsolated(1, 2)
            .to_string()
            .contains("isolated"));
        let ie = VertexDynError::InactiveEndpoint(Edge::new(0, 1), 1);
        assert!(ie.to_string().contains("inactive"));
        assert!(ie.source().is_none());
        let conn = VertexDynError::Conn(ConnectivityError::InvalidBatch(Edge::new(0, 1)));
        assert!(conn.source().is_some());
    }
}
