//! The sequential streaming algorithm of the paper's Section 4 —
//! the reference the MPC implementation is derived from.
//!
//! `Connectivity` (Algorithm 1) maintains, in `O(n log³ n)` bits:
//!
//! * a component-id array `C` (Algorithm 1 line 1),
//! * an explicit spanning forest `F` (stored here as adjacency
//!   lists — the MPC version replaces this with Euler tours),
//! * one AGM sketch per vertex (`Insert`/`Delete` update them,
//!   Algorithms 2–3).
//!
//! Updates take `Õ(n)` sequential time (the paper's Section 2.1
//! comparison against AGM's polylog update / `O(log n)`-round query:
//! this structure trades update time for *instant* queries). The MPC
//! batch algorithm in [`crate::connectivity`] is the distributed
//! version of exactly this structure; the test suite cross-checks the
//! two on identical streams.

use mpc_graph::ids::{Edge, VertexId};
use mpc_graph::update::Update;
use mpc_sketch::vertex::EdgeSample;
use mpc_sketch::SketchBank;
use std::collections::{BTreeSet, VecDeque};

/// Errors of the streaming structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamingError {
    /// Insertion of a live edge or deletion of an absent one.
    InvalidUpdate(Edge),
}

impl std::fmt::Display for StreamingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamingError::InvalidUpdate(e) => write!(f, "invalid update for edge {e}"),
        }
    }
}

impl std::error::Error for StreamingError {}

impl From<StreamingError> for mpc_sim::MpcStreamError {
    fn from(e: StreamingError) -> Self {
        match e {
            StreamingError::InvalidUpdate(edge) => {
                mpc_sim::MpcStreamError::InvalidBatch(format!("invalid update for edge {edge}"))
            }
        }
    }
}

/// The Section 4 streaming connectivity structure
/// (Algorithms 1–4 of the paper).
///
/// # Examples
///
/// ```
/// use mpc_stream_core::streaming::StreamingConnectivity;
/// use mpc_graph::ids::Edge;
/// use mpc_graph::update::Update;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sc = StreamingConnectivity::new(8, 42);
/// sc.apply(Update::Insert(Edge::new(0, 1)))?;
/// sc.apply(Update::Insert(Edge::new(1, 2)))?;
/// assert_eq!(sc.component_of(2), 0);
/// sc.apply(Update::Delete(Edge::new(0, 1)))?;
/// assert!(!sc.connected(0, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StreamingConnectivity {
    n: usize,
    comp: Vec<VertexId>,
    /// Spanning-forest adjacency (the paper stores `F` explicitly).
    forest: Vec<BTreeSet<VertexId>>,
    bank: SketchBank,
    live: BTreeSet<Edge>,
}

impl StreamingConnectivity {
    /// Creates the structure for an empty `n`-vertex graph. Keeps
    /// `Θ(log n)` independent sketches per vertex as the batch
    /// version does (Section 6.3's strengthening of the single-sketch
    /// Section 4 structure).
    pub fn new(n: usize, seed: u64) -> Self {
        let log_n = (usize::BITS - (n.max(2) - 1).leading_zeros()).max(1) as usize;
        StreamingConnectivity {
            n,
            comp: (0..n as u32).collect(),
            forest: vec![BTreeSet::new(); n],
            bank: SketchBank::new(n, log_n + 6, seed),
            live: BTreeSet::new(),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of live edges (the structure itself stores only
    /// `Õ(n)` of state; this count is maintained for diagnostics).
    pub fn live_edge_count(&self) -> usize {
        self.live.len()
    }

    /// Component id of `v` (minimum member id) — `O(1)`, Algorithm 4.
    pub fn component_of(&self, v: VertexId) -> VertexId {
        self.comp[v as usize]
    }

    /// Whether two vertices are connected — `O(1)`.
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.comp[u as usize] == self.comp[v as usize]
    }

    /// The full component labelling (index = vertex), matching
    /// [`Connectivity::component_labels`](crate::Connectivity::component_labels).
    pub fn component_labels(&self) -> &[VertexId] {
        &self.comp
    }

    /// The maintained spanning forest (Algorithm 4 `Query`).
    pub fn spanning_forest(&self) -> Vec<Edge> {
        let mut out = Vec::new();
        for u in 0..self.n as u32 {
            for &v in &self.forest[u as usize] {
                if u < v {
                    out.push(Edge::new(u, v));
                }
            }
        }
        out
    }

    /// Memory footprint in words: `C`, `F`, and the sketches —
    /// `O(n log³ n)` (paper Lemma 4.1).
    pub fn words(&self) -> u64 {
        let forest_words: u64 = 2 * self.spanning_forest().len() as u64;
        self.n as u64 + forest_words + self.bank.words()
    }

    /// Vertices of the forest tree containing `v` (the set `Z_v` of
    /// Algorithm 3), by BFS over the stored forest.
    fn tree_of(&self, v: VertexId) -> Vec<VertexId> {
        let mut seen = BTreeSet::from([v]);
        let mut queue = VecDeque::from([v]);
        let mut out = vec![v];
        while let Some(x) = queue.pop_front() {
            for &y in &self.forest[x as usize] {
                if seen.insert(y) {
                    out.push(y);
                    queue.push_back(y);
                }
            }
        }
        out
    }

    fn relabel(&mut self, members: &[VertexId]) {
        // Relabeling an empty component is a no-op, not an abort.
        let Some(&min) = members.iter().min() else {
            return;
        };
        for &w in members {
            self.comp[w as usize] = min;
        }
    }

    /// Applies one update (Algorithms 2 and 3). `Õ(n)` time in the
    /// worst case (component relabel / sketch merge).
    ///
    /// # Errors
    ///
    /// [`StreamingError::InvalidUpdate`] on contract violations.
    pub fn apply(&mut self, update: Update) -> Result<(), StreamingError> {
        match update {
            Update::Insert(e) => self.insert(e),
            Update::Delete(e) => self.delete(e),
        }
    }

    /// Algorithm 2 (`Insert`).
    fn insert(&mut self, e: Edge) -> Result<(), StreamingError> {
        if !self.live.insert(e) {
            return Err(StreamingError::InvalidUpdate(e));
        }
        self.bank.insert_edge(e);
        let (u, v) = e.endpoints();
        if self.comp[u as usize] != self.comp[v as usize] {
            // Line 6: {u,v} joins F; merge component ids (lines 7–9).
            self.forest[u as usize].insert(v);
            self.forest[v as usize].insert(u);
            let members = self.tree_of(u);
            self.relabel(&members);
        }
        Ok(())
    }

    /// Algorithm 3 (`Delete`).
    fn delete(&mut self, e: Edge) -> Result<(), StreamingError> {
        if !self.live.remove(&e) {
            return Err(StreamingError::InvalidUpdate(e));
        }
        self.bank.delete_edge(e);
        let (u, v) = e.endpoints();
        if !self.forest[u as usize].contains(&v) {
            return Ok(()); // non-tree edge: nothing else to do
        }
        // Split F along {u,v} (lines 6–7) and search for a
        // replacement by merging Z_u's sketches (line 8), retrying
        // across the independent copies.
        self.forest[u as usize].remove(&v);
        self.forest[v as usize].remove(&u);
        let z_u = self.tree_of(u);
        let mut replacement = None;
        let mut scratch = self.bank.new_scratch();
        for copy in 0..self.bank.copies() {
            scratch.reset(copy);
            let absorbed = self.bank.merge_copy_into(&z_u, &mut scratch);
            match (absorbed > 0).then(|| self.bank.sample_merged(&scratch)) {
                Some(EdgeSample::Edge(r)) => {
                    replacement = Some(r);
                    break;
                }
                None | Some(EdgeSample::Empty) => break, // certified no cut edge
                Some(EdgeSample::Fail) => continue,      // retry with fresh copy
            }
        }
        match replacement {
            Some(r) => {
                // Line 15: add {a,b} to F; component ids unchanged.
                self.forest[r.u() as usize].insert(r.v());
                self.forest[r.v() as usize].insert(r.u());
            }
            None => {
                // Lines 11–12: the component splits; relabel each side.
                let z_u = self.tree_of(u);
                let z_v = self.tree_of(v);
                self.relabel(&z_u);
                self.relabel(&z_v);
            }
        }
        Ok(())
    }
}

// ----- snapshot persistence ---------------------------------------

impl mpc_snapshot::Persist for StreamingConnectivity {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        self.comp.save(w);
        self.forest.save(w);
        self.bank.save(w);
        self.live.save(w);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let n = r.take_usize()?;
        let comp = Vec::<VertexId>::load(r)?;
        let forest = Vec::<BTreeSet<VertexId>>::load(r)?;
        let bank = SketchBank::load(r)?;
        let live = BTreeSet::<Edge>::load(r)?;
        if comp.len() != n || forest.len() != n {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "streaming-connectivity tables cover {}/{} of {n} vertices",
                comp.len(),
                forest.len()
            )));
        }
        Ok(StreamingConnectivity {
            n,
            comp,
            forest,
            bank,
            live,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::gen;
    use mpc_graph::oracle;

    fn check(sc: &StreamingConnectivity, live: &[Edge], n: usize) {
        let expect = oracle::components(n, live.iter().copied());
        assert_eq!(sc.comp, expect, "labels diverged");
        let forest = sc.spanning_forest();
        let mut uf = oracle::UnionFind::new(n);
        for e in &forest {
            assert!(live.contains(e), "forest edge {e} not live");
            assert!(uf.union(e.u(), e.v()), "forest cycle at {e}");
        }
        assert_eq!(
            uf.component_count(),
            oracle::component_count(n, live.iter().copied())
        );
    }

    #[test]
    fn insert_path_and_cycle() {
        let n = 8;
        let mut sc = StreamingConnectivity::new(n, 1);
        let mut live = Vec::new();
        for i in 0..7u32 {
            let e = Edge::new(i, i + 1);
            sc.apply(Update::Insert(e)).unwrap();
            live.push(e);
            check(&sc, &live, n);
        }
        let closing = Edge::new(0, 7);
        sc.apply(Update::Insert(closing)).unwrap();
        live.push(closing);
        check(&sc, &live, n);
    }

    #[test]
    fn delete_with_and_without_replacement() {
        let n = 6;
        let mut sc = StreamingConnectivity::new(n, 2);
        let tri = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)];
        for e in tri {
            sc.apply(Update::Insert(e)).unwrap();
        }
        // Delete a tree edge: replacement via the third edge.
        let forest = sc.spanning_forest();
        sc.apply(Update::Delete(forest[0])).unwrap();
        assert!(sc.connected(0, 2));
        let live: Vec<Edge> = tri.iter().copied().filter(|&e| e != forest[0]).collect();
        check(&sc, &live, n);
        // Delete both remaining: full split.
        for e in &live {
            sc.apply(Update::Delete(*e)).unwrap();
        }
        check(&sc, &[], n);
        assert!(!sc.connected(0, 1));
    }

    #[test]
    fn random_stream_matches_oracle_and_mpc_version() {
        use crate::{Connectivity, ConnectivityConfig};
        use mpc_sim::{MpcConfig, MpcContext};
        let n = 40;
        let stream = gen::random_mixed_stream(n, 12, 6, 0.7, 77);
        let snaps = stream.replay();
        let mut sc = StreamingConnectivity::new(n, 3);
        let mut ctx = MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 16).build());
        let mut mpc = Connectivity::new(n, ConnectivityConfig::default(), 3);
        for (batch, snap) in stream.batches.iter().zip(&snaps) {
            for u in batch.iter() {
                sc.apply(u).unwrap();
            }
            mpc.apply_batch(batch, &mut ctx).unwrap();
            let live: Vec<Edge> = snap.edges().collect();
            check(&sc, &live, n);
            // The two implementations agree exactly on the labelling.
            assert_eq!(sc.comp, mpc.component_labels());
        }
    }

    #[test]
    fn invalid_updates_rejected() {
        let mut sc = StreamingConnectivity::new(4, 4);
        let e = Edge::new(0, 1);
        assert!(sc.apply(Update::Delete(e)).is_err());
        sc.apply(Update::Insert(e)).unwrap();
        assert!(sc.apply(Update::Insert(e)).is_err());
        assert_eq!(sc.live_edge_count(), 1);
        assert!(sc.words() > 0);
    }

    #[test]
    fn star_churn() {
        let n = 12;
        let mut sc = StreamingConnectivity::new(n, 5);
        let spokes: Vec<Edge> = (1..n as u32).map(|i| Edge::new(0, i)).collect();
        for &e in &spokes {
            sc.apply(Update::Insert(e)).unwrap();
        }
        check(&sc, &spokes, n);
        for (i, &e) in spokes.iter().enumerate() {
            sc.apply(Update::Delete(e)).unwrap();
            let live: Vec<Edge> = spokes[i + 1..].to_vec();
            check(&sc, &live, n);
        }
    }
    #[test]
    fn streaming_reference_agrees_with_mpc_implementation() {
        // The Section 4 sequential algorithm and the Section 6 MPC
        // implementation are the same algorithm at different layers:
        // their maintained labellings must coincide on any stream.
        use crate::connectivity::{Connectivity, ConnectivityConfig};
        use mpc_sim::{MpcConfig, MpcContext};
        let n = 48;
        let stream = gen::random_mixed_stream(n, 8, 10, 0.6, 909);
        let mut ctx = MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 15).build());
        let mut sc = StreamingConnectivity::new(n, 1);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 2);
        for batch in &stream.batches {
            for u in batch.iter() {
                sc.apply(u).expect("valid stream");
            }
            conn.apply_batch(batch, &mut ctx).expect("valid stream");
            assert_eq!(sc.component_labels(), conn.component_labels());
            assert_eq!(sc.spanning_forest().len(), conn.spanning_forest().len());
        }
    }
}
