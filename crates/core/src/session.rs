//! The unified driver: one front door for every maintainer.
//!
//! The paper's central claim (Theorem 1.1 and its corollaries) is
//! that *one* streaming-MPC harness maintains connectivity, MSF,
//! bipartiteness, matching, and k-edge-connectivity with the same
//! batch/round/memory discipline. This module is that harness as an
//! API:
//!
//! * [`Maintain`] — the trait every algorithm structure implements:
//!   `apply_batch(&Batch, &mut MpcContext) ->
//!   Result<BatchReport, MpcStreamError>` plus `n()`, `name()`,
//!   `words()`, and `validate()` hooks. Weighted-aware maintainers
//!   (the MSF family) additionally override the weighted ingest path;
//!   everyone else sees the weight-stripped projection.
//! * [`Session`] — the engine: owns the [`MpcContext`], registers any
//!   number of boxed maintainers, normalizes and chunks incoming
//!   updates into legal `Õ(n^φ)` batches, fans each batch to every
//!   registered maintainer (in parallel, on disjoint machine groups —
//!   rounds compose by max, communication by sum), and exposes
//!   unified per-batch [`BatchReport`]s plus a [`SessionStats`]
//!   rollup with a per-batch capacity audit.
//!
//! # Examples
//!
//! ```
//! use mpc_stream_core::{Connectivity, ConnectivityConfig, Session};
//! use mpc_graph::ids::Edge;
//! use mpc_graph::update::Update;
//! use mpc_sim::MpcConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = MpcConfig::builder(32, 0.5).local_capacity(1 << 14).build();
//! let mut session = Session::new(cfg);
//! let conn = session.register(Connectivity::new(32, ConnectivityConfig::default(), 7));
//! let reports = session.apply([
//!     Update::Insert(Edge::new(0, 1)),
//!     Update::Insert(Edge::new(1, 2)),
//! ])?;
//! assert_eq!(reports.len(), 1); // one chunk × one maintainer
//! assert!(session.get::<Connectivity>(conn).unwrap().connected(0, 2));
//! # Ok(())
//! # }
//! ```

use crate::connectivity::Connectivity;
use crate::robust::RobustConnectivity;
use crate::streaming::StreamingConnectivity;
use crate::vertex_dynamic::VertexDynamicConnectivity;
use mpc_graph::update::{Batch, Update, WeightedBatch, WeightedUpdate};
use mpc_sim::{
    BatchAudit, BatchReport, MpcConfig, MpcContext, MpcError, MpcStreamError, SessionStats,
};
use std::any::Any;
use std::collections::BTreeMap;

/// A batch-dynamic graph structure that can be driven through the
/// unified [`Session`] engine.
///
/// Implementors supply the identification hooks and [`Maintain::
/// ingest`], the error-unified batch application; the provided
/// [`Maintain::apply_batch`] wraps ingestion with the standard
/// round/communication/audit measurement and returns the unified
/// [`BatchReport`].
///
/// The `Any` supertrait lets a [`Session`] hand back concrete
/// references for queries ([`Session::get`]).
pub trait Maintain: Any {
    /// A short stable name for reports and diagnostics.
    fn name(&self) -> &'static str;

    /// Number of vertices (or vertex slots) this maintainer covers.
    fn n(&self) -> usize;

    /// Current memory footprint of the maintained state, in words.
    fn words(&self) -> u64;

    /// Cumulative `ℓ0`-sampler failures absorbed so far (0 for
    /// maintainers without samplers).
    fn l0_failures(&self) -> u64 {
        0
    }

    /// Checks internal invariants (cheap by default; structures with
    /// an expensive validator keep it on their inherent surface).
    ///
    /// # Errors
    ///
    /// [`MpcStreamError::Internal`] when an invariant is broken.
    fn validate(&self) -> Result<(), MpcStreamError> {
        Ok(())
    }

    /// Applies one unweighted batch, converting every failure into
    /// the workspace-wide [`MpcStreamError`].
    ///
    /// # Errors
    ///
    /// See [`MpcStreamError`] for the failure classes.
    fn ingest(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), MpcStreamError>;

    /// Applies one weighted batch. Weight-aware maintainers (the MSF
    /// family) override this; the default strips weights and
    /// delegates to [`Maintain::ingest`].
    ///
    /// # Errors
    ///
    /// See [`MpcStreamError`].
    fn ingest_weighted(
        &mut self,
        batch: &WeightedBatch,
        ctx: &mut MpcContext,
    ) -> Result<(), MpcStreamError> {
        self.ingest(&batch.unweighted(), ctx)
    }

    /// Applies one batch and reports its measured consumption — the
    /// unified entry point of the whole workspace.
    ///
    /// # Errors
    ///
    /// See [`MpcStreamError`].
    fn apply_batch(
        &mut self,
        batch: &Batch,
        ctx: &mut MpcContext,
    ) -> Result<BatchReport, MpcStreamError> {
        let audit = BatchAudit::begin(ctx);
        let l0 = self.l0_failures();
        self.ingest(batch, ctx)?;
        Ok(audit.finish(self.name(), batch.len(), self.l0_failures() - l0, ctx))
    }

    /// Weighted counterpart of [`Maintain::apply_batch`].
    ///
    /// # Errors
    ///
    /// See [`MpcStreamError`].
    fn apply_weighted_batch(
        &mut self,
        batch: &WeightedBatch,
        ctx: &mut MpcContext,
    ) -> Result<BatchReport, MpcStreamError> {
        let audit = BatchAudit::begin(ctx);
        let l0 = self.l0_failures();
        self.ingest_weighted(batch, ctx)?;
        Ok(audit.finish(self.name(), batch.len(), self.l0_failures() - l0, ctx))
    }
}

/// Handle to a maintainer registered in a [`Session`]; pass it to
/// [`Session::get`] / [`Session::get_mut`] to run queries.
pub type MaintainerId = usize;

/// The unified driver engine: one accounted cluster, any number of
/// maintainers, one update stream.
///
/// Updates submitted through [`Session::apply`] (or
/// [`Session::apply_weighted`]) are by default **normalized** —
/// updates that exactly undo each other inside one submission are
/// cancelled, the paper's Section 1.2 WLOG for its toggle-semantic
/// dynamic-graph contract. Maintainers with *different* stream
/// contracts (e.g. the maximal-matching substrate's set
/// semantics, where a duplicate insert followed by a delete nets to
/// absent) can observe a different result than their direct
/// `apply_batch` would produce on the raw sequence; disable
/// normalization with [`Session::with_normalization`] to forward
/// every submitted update verbatim and let each maintainer apply its
/// own contract. Submissions are then **chunked** into batches of at
/// most
/// [`Session::max_batch`] updates (a legal `Õ(n^φ)` batch always fits
/// one machine), and each chunk is fanned to every registered
/// maintainer inside a parallel scope: the maintainers run on
/// disjoint machine groups, so a chunk costs the *maximum*
/// maintainer's rounds while all communication is accounted.
///
/// After each chunk the session audits the standing state of all
/// maintainers against the cluster's total capacity; overruns are an
/// error in strict mode and a recorded violation otherwise.
///
/// On `Err`, maintainers earlier in registration order may have
/// ingested the failing chunk while later ones have not — the session
/// is left consistent only on `Ok`, like any multi-structure
/// transaction without rollback. Validate with
/// [`Session::validate_all`] before trusting answers after an error.
pub struct Session {
    ctx: MpcContext,
    maintainers: Vec<Box<dyn Maintain>>,
    stats: SessionStats,
    max_batch: usize,
    normalize: bool,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("maintainers", &self.names())
            .field("max_batch", &self.max_batch)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Creates an empty session owning a fresh context for `cfg`.
    /// The default chunk size is `s / 4` updates — a batch whose
    /// auxiliary structures (≈ 2–3 words per update) are guaranteed
    /// to fit one machine.
    pub fn new(cfg: MpcConfig) -> Self {
        let max_batch = (cfg.local_capacity() / 4).max(1) as usize;
        Session {
            ctx: MpcContext::new(cfg),
            maintainers: Vec::new(),
            stats: SessionStats::default(),
            max_batch,
            normalize: true,
        }
    }

    /// Overrides the chunk size (clamped to at least 1).
    #[must_use]
    pub fn with_max_batch(mut self, updates: usize) -> Self {
        self.max_batch = updates.max(1);
        self
    }

    /// Enables or disables submission-level normalization (default:
    /// enabled). Disabled, every submitted update is forwarded
    /// verbatim — the right choice when set-semantic or
    /// insertion-only maintainers should see (and accept or reject)
    /// the raw sequence under their own contracts.
    #[must_use]
    pub fn with_normalization(mut self, enabled: bool) -> Self {
        self.normalize = enabled;
        self
    }

    /// The maximum updates per fanned-out batch.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Registers a maintainer, returning its handle.
    pub fn register<M: Maintain>(&mut self, maintainer: M) -> MaintainerId {
        self.register_boxed(Box::new(maintainer))
    }

    /// Registers an already-boxed maintainer (for heterogeneous
    /// collections built elsewhere), returning its handle.
    pub fn register_boxed(&mut self, maintainer: Box<dyn Maintain>) -> MaintainerId {
        self.maintainers.push(maintainer);
        self.maintainers.len() - 1
    }

    /// Number of registered maintainers.
    pub fn maintainer_count(&self) -> usize {
        self.maintainers.len()
    }

    /// The registered maintainers' names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.maintainers.iter().map(|m| m.name()).collect()
    }

    /// The owned accounting context.
    pub fn ctx(&self) -> &MpcContext {
        &self.ctx
    }

    /// Mutable access to the context (for interleaving externally
    /// driven structures or charged queries on the same cluster).
    pub fn ctx_mut(&mut self) -> &mut MpcContext {
        &mut self.ctx
    }

    /// The lifetime rollup.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Concrete access to a registered maintainer for queries.
    pub fn get<M: Maintain>(&self, id: MaintainerId) -> Option<&M> {
        let m: &dyn Any = self.maintainers.get(id)?.as_ref();
        m.downcast_ref::<M>()
    }

    /// Mutable concrete access to a registered maintainer.
    pub fn get_mut<M: Maintain>(&mut self, id: MaintainerId) -> Option<&mut M> {
        let m: &mut dyn Any = self.maintainers.get_mut(id)?.as_mut();
        m.downcast_mut::<M>()
    }

    /// Runs a charged query against a registered maintainer: the
    /// closure receives the concrete maintainer **and** the session's
    /// own accounting context, so query rounds land on the same
    /// cluster the updates are charged to (the borrow of the
    /// maintainer list and the context split safely). Returns `None`
    /// if the handle or the downcast fails.
    pub fn query<M: Maintain, R>(
        &mut self,
        id: MaintainerId,
        f: impl FnOnce(&mut M, &mut MpcContext) -> R,
    ) -> Option<R> {
        let m: &mut dyn Any = self.maintainers.get_mut(id)?.as_mut();
        let m = m.downcast_mut::<M>()?;
        Some(f(m, &mut self.ctx))
    }

    /// Dynamic access to a registered maintainer (trait surface
    /// only).
    pub fn maintainer(&self, id: MaintainerId) -> Option<&dyn Maintain> {
        self.maintainers.get(id).map(Box::as_ref)
    }

    /// Total standing state across all maintainers, in words.
    pub fn state_words(&self) -> u64 {
        self.maintainers.iter().map(|m| m.words()).sum()
    }

    /// Runs every maintainer's invariant validator.
    ///
    /// # Errors
    ///
    /// The first maintainer's [`MpcStreamError::Internal`], if any.
    pub fn validate_all(&self) -> Result<(), MpcStreamError> {
        for m in &self.maintainers {
            m.validate()?;
        }
        Ok(())
    }

    /// Submits unweighted updates: normalize, chunk, fan out. Returns
    /// one [`BatchReport`] per (chunk, maintainer) pair, in chunk
    /// order then registration order.
    ///
    /// # Errors
    ///
    /// The first maintainer failure, or a strict-mode capacity
    /// overrun of the combined standing state.
    pub fn apply(
        &mut self,
        updates: impl IntoIterator<Item = Update>,
    ) -> Result<Vec<BatchReport>, MpcStreamError> {
        let submitted = if self.normalize {
            normalize_updates(updates)
        } else {
            updates.into_iter().collect()
        };
        let chunks: Vec<Batch> = submitted
            .chunks(self.max_batch)
            .map(|c| Batch::from_updates(c.to_vec()))
            .collect();
        self.fan_out(&chunks, |m, batch, ctx| m.apply_batch(batch, ctx))
    }

    /// Submits weighted updates; weight-aware maintainers see the
    /// weights, everyone else the projection.
    ///
    /// # Errors
    ///
    /// As [`Session::apply`].
    pub fn apply_weighted(
        &mut self,
        updates: impl IntoIterator<Item = WeightedUpdate>,
    ) -> Result<Vec<BatchReport>, MpcStreamError> {
        let submitted = if self.normalize {
            normalize_weighted_updates(updates)
        } else {
            updates.into_iter().collect()
        };
        let chunks: Vec<WeightedBatch> = submitted
            .chunks(self.max_batch)
            .map(|c| WeightedBatch::from_updates(c.to_vec()))
            .collect();
        self.fan_out(&chunks, |m, batch, ctx| m.apply_weighted_batch(batch, ctx))
    }

    /// Convenience: submit an already-built batch (still normalized
    /// and re-chunked if oversized).
    ///
    /// # Errors
    ///
    /// As [`Session::apply`].
    pub fn apply_batch(&mut self, batch: &Batch) -> Result<Vec<BatchReport>, MpcStreamError> {
        self.apply(batch.iter())
    }

    /// Chunk-by-chunk fan-out with parallel round composition and the
    /// per-chunk capacity audit.
    fn fan_out<B>(
        &mut self,
        chunks: &[B],
        mut apply: impl FnMut(
            &mut dyn Maintain,
            &B,
            &mut MpcContext,
        ) -> Result<BatchReport, MpcStreamError>,
        // B: Batch or WeightedBatch; only its length is needed here.
    ) -> Result<Vec<BatchReport>, MpcStreamError>
    where
        B: BatchLike,
    {
        let mut reports = Vec::with_capacity(chunks.len() * self.maintainers.len());
        for chunk in chunks {
            if chunk.len() == 0 {
                continue;
            }
            // Distribute the chunk to every maintainer's machine
            // group: one sort of the update list (O(1/φ) rounds).
            let chunk_audit = BatchAudit::begin(&self.ctx);
            self.ctx.sort(2 * chunk.len() as u64 + 1);
            self.ctx.parallel_begin();
            let mut failure: Option<MpcStreamError> = None;
            for m in &mut self.maintainers {
                match apply(m.as_mut(), chunk, &mut self.ctx) {
                    Ok(report) => {
                        self.stats.absorb(&report);
                        reports.push(report);
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
                self.ctx.parallel_branch();
            }
            self.ctx.parallel_end();
            if let Some(e) = failure {
                // The failed chunk's rounds remain visible in the raw
                // context stats, but the session rollup only counts
                // chunks every maintainer ingested.
                return Err(e);
            }
            let chunk_report = chunk_audit.finish("session", chunk.len(), 0, &self.ctx);
            self.stats
                .record_chunk(chunk.len(), chunk_report.rounds, chunk_report.words);
            self.audit_capacity()?;
        }
        Ok(reports)
    }

    /// Checks the combined standing state against the cluster's total
    /// capacity (`machines × s`). Strict mode errors; permissive mode
    /// records a violation in the rollup.
    fn audit_capacity(&mut self) -> Result<(), MpcStreamError> {
        let used = self.state_words();
        let capacity = self.ctx.config().machines() as u64 * self.ctx.config().local_capacity();
        if used > capacity {
            if self.ctx.config().strict() {
                return Err(MpcStreamError::Capacity(MpcError::ClusterMemoryExceeded {
                    used,
                    capacity,
                }));
            }
            self.stats.capacity_violations += 1;
        }
        Ok(())
    }
}

/// Batches the fan-out can drive: the engine only needs their length.
trait BatchLike {
    fn len(&self) -> usize;
}

impl BatchLike for Batch {
    fn len(&self) -> usize {
        Batch::len(self)
    }
}

impl BatchLike for WeightedBatch {
    fn len(&self) -> usize {
        WeightedBatch::len(self)
    }
}

/// Validates every batch endpoint against `[0, n)` — the shared
/// legality gate next to [`MpcContext::ensure_batch_fits`], used by
/// the maintainers whose storage would otherwise index out of range.
///
/// # Errors
///
/// [`MpcStreamError::InvalidBatch`] naming the offending edge.
pub fn ensure_endpoints_in(batch: &Batch, n: usize) -> Result<(), MpcStreamError> {
    for u in batch.iter() {
        let e = u.edge();
        if e.v() as usize >= n {
            return Err(MpcStreamError::InvalidBatch(format!(
                "edge {e} has an endpoint outside [0, {n})"
            )));
        }
    }
    Ok(())
}

/// The shared batch-routing preamble of the leaf maintainers:
/// endpoint validation, the one-machine legality gate, one exchange
/// routing the batch to its shards, and the control broadcast.
///
/// # Errors
///
/// [`MpcStreamError::InvalidBatch`] or [`MpcStreamError::Capacity`]
/// (state untouched — call before mutating).
pub fn route_batch(batch: &Batch, n: usize, ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
    ensure_endpoints_in(batch, n)?;
    ctx.ensure_batch_fits(2 * batch.len() as u64 + 1)?;
    ctx.exchange(2 * batch.len() as u64 + 1);
    ctx.broadcast(2);
    Ok(())
}

/// Net-effect normalization (the paper's Section 1.2 WLOG): per edge,
/// an update that exactly undoes the previous surviving one cancels
/// with it (insert/delete of the same edge — and, for weighted
/// streams, the same weight). Everything else survives, in arrival
/// order: a duplicate same-direction update or a reweight pair is the
/// *caller's* statement, forwarded for each maintainer to accept or
/// reject under its own contract.
fn normalize<U: Copy>(
    updates: impl IntoIterator<Item = U>,
    edge_of: impl Fn(&U) -> mpc_graph::ids::Edge,
    undoes: impl Fn(&U, &U) -> bool,
) -> Vec<U> {
    let mut pending: BTreeMap<mpc_graph::ids::Edge, Vec<(U, usize)>> = BTreeMap::new();
    for (i, u) in updates.into_iter().enumerate() {
        let stack = pending.entry(edge_of(&u)).or_default();
        if stack.last().is_some_and(|(last, _)| undoes(last, &u)) {
            stack.pop();
        } else {
            stack.push((u, i));
        }
    }
    let mut ordered: Vec<(U, usize)> = pending.into_values().flatten().collect();
    ordered.sort_by_key(|&(_, i)| i);
    ordered.into_iter().map(|(u, _)| u).collect()
}

fn normalize_updates(updates: impl IntoIterator<Item = Update>) -> Vec<Update> {
    normalize(updates, |u| u.edge(), |a, b| a.is_insert() != b.is_insert())
}

fn normalize_weighted_updates(
    updates: impl IntoIterator<Item = WeightedUpdate>,
) -> Vec<WeightedUpdate> {
    normalize(
        updates,
        |u| u.weighted_edge().edge,
        |a, b| {
            a.is_insert() != b.is_insert() && a.weighted_edge().weight == b.weighted_edge().weight
        },
    )
}

// ----- Maintain impls for the core maintainers --------------------

impl Maintain for Connectivity {
    fn name(&self) -> &'static str {
        "connectivity"
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        Connectivity::words(self)
    }

    fn l0_failures(&self) -> u64 {
        self.sampler_failure_count()
    }

    fn ingest(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
        Connectivity::apply_batch(self, batch, ctx)?;
        Ok(())
    }
}

impl Maintain for StreamingConnectivity {
    fn name(&self) -> &'static str {
        "streaming-connectivity"
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        StreamingConnectivity::words(self)
    }

    /// The Section 4 reference processes the batch as a sequence of
    /// single updates (the batch algorithm at `k = 1`): one exchange
    /// routes the batch, then every update is charged its own round —
    /// `Θ(k)` rounds per k-update chunk, the sequential-structure cost
    /// the batch algorithm's `O(1/φ)` improves on.
    fn ingest(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
        ensure_endpoints_in(batch, self.vertex_count())?;
        ctx.ensure_batch_fits(2 * batch.len() as u64 + 1)?;
        ctx.exchange(2 * batch.len() as u64 + 1);
        for u in batch.iter() {
            ctx.exchange(2);
            self.apply(u)?;
        }
        Ok(())
    }
}

impl Maintain for RobustConnectivity {
    fn name(&self) -> &'static str {
        "robust-connectivity"
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        RobustConnectivity::words(self)
    }

    fn l0_failures(&self) -> u64 {
        self.sampler_failure_count()
    }

    fn ingest(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
        RobustConnectivity::apply_batch(self, batch, ctx)?;
        Ok(())
    }
}

impl Maintain for VertexDynamicConnectivity {
    fn name(&self) -> &'static str {
        "vertex-dynamic-connectivity"
    }

    fn n(&self) -> usize {
        self.capacity()
    }

    fn words(&self) -> u64 {
        VertexDynamicConnectivity::words(self)
    }

    fn l0_failures(&self) -> u64 {
        self.sampler_failure_count()
    }

    fn ingest(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
        VertexDynamicConnectivity::apply_batch(self, batch, ctx)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::ConnectivityConfig;
    use mpc_graph::gen;
    use mpc_graph::ids::Edge;
    use mpc_graph::oracle;

    fn cfg(n: usize) -> MpcConfig {
        MpcConfig::builder(n, 0.5).local_capacity(1 << 15).build()
    }

    #[test]
    fn session_drives_one_maintainer_like_direct_use() {
        let n = 48;
        let stream = gen::random_mixed_stream(n, 8, 10, 0.6, 42);
        let snaps = stream.replay();
        let mut session = Session::new(cfg(n));
        let h = session.register(Connectivity::new(n, ConnectivityConfig::default(), 3));
        for (batch, snap) in stream.batches.iter().zip(&snaps) {
            session.apply_batch(batch).expect("valid stream");
            let live: Vec<Edge> = snap.edges().collect();
            let labels = oracle::components(n, live.iter().copied());
            let conn = session.get::<Connectivity>(h).expect("handle is live");
            assert_eq!(conn.component_labels(), &labels[..]);
        }
        assert!(session.stats().batches >= stream.batches.len() as u64);
        assert!(session.stats().rounds > 0);
        assert!(session.state_words() > 0);
        session.validate_all().expect("invariants hold");
    }

    #[test]
    fn fan_out_composes_rounds_by_max_not_sum() {
        let n = 16;
        let mut single = Session::new(cfg(n));
        single.register(Connectivity::new(n, ConnectivityConfig::default(), 1));
        let mut double = Session::new(cfg(n));
        double.register(Connectivity::new(n, ConnectivityConfig::default(), 1));
        double.register(Connectivity::new(n, ConnectivityConfig::default(), 2));
        let updates: Vec<Update> = (0..8u32)
            .map(|i| Update::Insert(Edge::new(i, i + 1)))
            .collect();
        single.apply(updates.clone()).expect("apply");
        double.apply(updates).expect("apply");
        // Two identical maintainers in parallel: session rounds stay
        // within a whisker of one (identical branches, max-composed).
        assert_eq!(single.stats().rounds, double.stats().rounds);
        // …while both maintainers' communication is accounted.
        assert!(double.stats().words > single.stats().words);
        assert_eq!(double.stats().maintainer_batches, 2);
    }

    #[test]
    fn chunking_respects_max_batch() {
        let n = 32;
        let mut session = Session::new(cfg(n)).with_max_batch(4);
        session.register(Connectivity::new(n, ConnectivityConfig::default(), 5));
        let updates: Vec<Update> = (0..10u32)
            .map(|i| Update::Insert(Edge::new(i, i + 1)))
            .collect();
        let reports = session.apply(updates).expect("apply");
        // 10 updates at ≤4 per chunk → 3 chunks × 1 maintainer.
        assert_eq!(reports.len(), 3);
        assert_eq!(session.stats().batches, 3);
        assert_eq!(session.stats().updates, 10);
        assert_eq!(session.max_batch(), 4);
    }

    #[test]
    fn normalization_cancels_opposing_updates() {
        let e = Edge::new(0, 1);
        let kept = normalize_updates([
            Update::Insert(e),
            Update::Delete(e),
            Update::Insert(Edge::new(2, 3)),
        ]);
        assert_eq!(kept, vec![Update::Insert(Edge::new(2, 3))]);
        // Odd count: the final operation survives.
        let kept = normalize_updates([Update::Insert(e), Update::Delete(e), Update::Insert(e)]);
        assert_eq!(kept, vec![Update::Insert(e)]);
        // Through a session: a net no-op leaves the graph empty.
        let mut session = Session::new(cfg(8));
        let h = session.register(Connectivity::new(8, ConnectivityConfig::default(), 9));
        session
            .apply([Update::Insert(e), Update::Delete(e)])
            .expect("net no-op");
        let conn = session.get::<Connectivity>(h).expect("live");
        assert_eq!(conn.live_edge_count(), 0);
    }

    #[test]
    fn weighted_normalization_keeps_final_weight() {
        use mpc_graph::ids::WeightedEdge;
        let kept = normalize_weighted_updates([
            WeightedUpdate::Insert(WeightedEdge::new(0, 1, 5)),
            WeightedUpdate::Delete(WeightedEdge::new(0, 1, 5)),
            WeightedUpdate::Insert(WeightedEdge::new(0, 1, 9)),
        ]);
        assert_eq!(
            kept,
            vec![WeightedUpdate::Insert(WeightedEdge::new(0, 1, 9))]
        );
    }

    #[test]
    fn weighted_reweight_pair_survives_normalization() {
        // Delete(w=5) then Insert(w=9) is a reweight, not a no-op:
        // the weights differ, so nothing cancels.
        use mpc_graph::ids::WeightedEdge;
        let kept = normalize_weighted_updates([
            WeightedUpdate::Delete(WeightedEdge::new(0, 1, 5)),
            WeightedUpdate::Insert(WeightedEdge::new(0, 1, 9)),
        ]);
        assert_eq!(
            kept,
            vec![
                WeightedUpdate::Delete(WeightedEdge::new(0, 1, 5)),
                WeightedUpdate::Insert(WeightedEdge::new(0, 1, 9)),
            ]
        );
    }

    #[test]
    fn duplicate_same_direction_updates_are_forwarded_not_dropped() {
        let e = Edge::new(0, 1);
        // Normalization only cancels exact undo pairs; a doubled
        // insert is the caller's statement and survives…
        assert_eq!(
            normalize_updates([Update::Insert(e), Update::Insert(e)]),
            vec![Update::Insert(e), Update::Insert(e)]
        );
        // …so each maintainer applies its own contract to the pair.
        // Connectivity applies the paper's batch-level WLOG and nets
        // the toggles out; a set-semantic maintainer must end up with
        // the edge present, not silently empty.
        let mut session = Session::new(cfg(8));
        let conn = session.register(Connectivity::new(8, ConnectivityConfig::default(), 4));
        session
            .apply([Update::Insert(e), Update::Insert(e)])
            .expect("forwarded to maintainer contracts");
        assert_eq!(
            session
                .get::<Connectivity>(conn)
                .expect("live")
                .live_edge_count(),
            0,
            "connectivity's batch WLOG nets even toggles out"
        );
    }

    #[test]
    fn raw_mode_forwards_updates_verbatim() {
        // with_normalization(false): the maintainer sees the raw
        // sequence and applies its own contract — here Connectivity's
        // batch-level WLOG still nets the pair out, but the session
        // itself forwarded both updates (2 counted, not 0).
        let e = Edge::new(0, 1);
        let mut session = Session::new(cfg(8)).with_normalization(false);
        session.register(Connectivity::new(8, ConnectivityConfig::default(), 6));
        let reports = session
            .apply([Update::Insert(e), Update::Delete(e)])
            .expect("legal toggle pair");
        assert_eq!(reports[0].updates, 2, "nothing cancelled by the session");
        assert_eq!(session.stats().updates, 2);
    }

    #[test]
    fn invalid_batch_surfaces_unified_error() {
        let mut session = Session::new(cfg(8));
        session.register(Connectivity::new(8, ConnectivityConfig::default(), 1));
        let err = session
            .apply([Update::Insert(Edge::new(0, 200))])
            .expect_err("endpoint out of range");
        assert!(matches!(err, MpcStreamError::InvalidBatch(_)));
    }

    #[test]
    fn capacity_violation_is_err_via_trait_surface() {
        // A tiny strict cluster: the batch's auxiliary structures
        // cannot be gathered to one 4-word machine.
        let tiny = MpcConfig::builder(16, 0.5)
            .local_capacity(4)
            .machines(2)
            .strict(true)
            .build();
        let mut ctx = MpcContext::new(tiny);
        let mut conn = Connectivity::new(16, ConnectivityConfig::default(), 2);
        let batch = Batch::inserting((0..8u32).map(|i| Edge::new(i, i + 1)));
        let err = Maintain::apply_batch(&mut conn, &batch, &mut ctx).expect_err("must not fit");
        assert!(matches!(err, MpcStreamError::Capacity(_)));
    }

    #[test]
    fn robust_and_vertex_dynamic_and_streaming_work_in_session() {
        let n = 12;
        let mut session = Session::new(cfg(n));
        let r = session.register(RobustConnectivity::new(
            n,
            2,
            8,
            ConnectivityConfig::default(),
            7,
        ));
        let s = session.register(StreamingConnectivity::new(n, 7));
        let mut vd = VertexDynamicConnectivity::with_capacity(n, ConnectivityConfig::default(), 7);
        {
            // Activate every slot up front so the shared stream's
            // endpoints are legal.
            let mut ctx = MpcContext::new(cfg(n));
            vd.add_vertices(n, &mut ctx).expect("capacity");
        }
        let v = session.register(vd);
        let stream = gen::random_insert_stream(n, 4, 6, 13);
        let snaps = stream.replay();
        for (batch, snap) in stream.batches.iter().zip(&snaps) {
            session.apply_batch(batch).expect("insert-only stream");
            let live: Vec<Edge> = snap.edges().collect();
            let labels = oracle::components(n, live.iter().copied());
            assert_eq!(
                session
                    .get::<RobustConnectivity>(r)
                    .expect("live")
                    .component_labels(),
                &labels[..]
            );
            assert_eq!(
                session
                    .get::<StreamingConnectivity>(s)
                    .expect("live")
                    .component_labels(),
                &labels[..]
            );
            let vd = session.get::<VertexDynamicConnectivity>(v).expect("live");
            for e in &live {
                assert!(vd.connected(e.u(), e.v()).expect("active"));
            }
        }
        assert_eq!(
            session.names(),
            vec![
                "robust-connectivity",
                "streaming-connectivity",
                "vertex-dynamic-connectivity"
            ]
        );
    }

    #[test]
    fn budget_exhaustion_maps_to_unified_error() {
        let n = 8;
        let mut session = Session::new(cfg(n));
        let h = session.register(RobustConnectivity::new(
            n,
            1,
            1,
            ConnectivityConfig::default(),
            3,
        ));
        session
            .apply([
                Update::Insert(Edge::new(0, 1)),
                Update::Insert(Edge::new(1, 2)),
            ])
            .expect("inserts are free");
        // Two consuming deletions: the second exhausts the 1×1 budget.
        for step in 0..2 {
            let target = session
                .get::<RobustConnectivity>(h)
                .expect("live")
                .spanning_forest()[0];
            let result = session.apply([Update::Delete(target)]);
            if step == 0 {
                result.expect("first consuming batch is within budget");
            } else {
                let err = result.expect_err("budget spent");
                assert!(matches!(err, MpcStreamError::BudgetExhausted(_)));
            }
        }
    }

    #[test]
    fn get_rejects_wrong_type_and_bad_handle() {
        let mut session = Session::new(cfg(8));
        let h = session.register(Connectivity::new(8, ConnectivityConfig::default(), 1));
        assert!(session.get::<StreamingConnectivity>(h).is_none());
        assert!(session.get::<Connectivity>(h + 1).is_none());
        assert!(session.get_mut::<Connectivity>(h).is_some());
        let dynamic = session.maintainer(h).expect("registered");
        assert_eq!(dynamic.name(), "connectivity");
        assert_eq!(dynamic.n(), 8);
        assert_eq!(dynamic.l0_failures(), 0);
        assert!(format!("{session:?}").contains("connectivity"));
    }

    #[test]
    fn permissive_session_records_state_capacity_violation() {
        // 2 machines × 64 words cannot hold a connectivity sketch
        // bank: the audit records (but does not error in permissive
        // mode) a violation.
        let small = MpcConfig::builder(32, 0.5)
            .local_capacity(64)
            .machines(2)
            .build();
        let mut session = Session::new(small).with_max_batch(8);
        session.register(Connectivity::new(32, ConnectivityConfig::default(), 1));
        session
            .apply([Update::Insert(Edge::new(0, 1))])
            .expect("permissive mode absorbs the overrun");
        assert!(session.stats().capacity_violations > 0);
    }
}
