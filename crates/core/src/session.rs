//! The unified driver: one front door for every maintainer, on both
//! the write side (batched updates) and the read side (typed,
//! budget-charged queries).
//!
//! The paper's central claim (Theorem 1.1 and its corollaries) is
//! that *one* streaming-MPC harness maintains connectivity, MSF,
//! bipartiteness, matching, and k-edge-connectivity with the same
//! batch/round/memory discipline — and serves *queries* against that
//! state as a round-charged protocol phase, not a host-side peek.
//! This module is that harness as an API:
//!
//! * [`Maintain`] — the trait every algorithm structure implements:
//!   `apply_batch(&Batch, &mut MpcContext) ->
//!   Result<BatchReport, MpcStreamError>` plus `n()`, `name()`,
//!   `words()`, and `validate()` hooks. Weighted-aware maintainers
//!   (the MSF family) additionally override the weighted ingest path;
//!   everyone else sees the weight-stripped projection. The read side
//!   is [`Maintain::answer`]: a maintainer opts into the
//!   [`QueryRequest`]s it can serve and charges each answer's rounds
//!   and communication through the context.
//! * [`Session`] — the engine: owns the [`MpcContext`], registers any
//!   number of maintainers (each [`Session::register`] returns a
//!   typed [`Handle`]), normalizes and chunks incoming updates into
//!   legal `Õ(n^φ)` batches, fans each batch to every registered
//!   maintainer (in parallel, on disjoint machine groups — rounds
//!   compose by max, communication by sum), and exposes unified
//!   per-batch [`BatchReport`]s plus a [`SessionStats`] rollup with a
//!   per-batch, per-maintainer capacity audit.
//!
//! # Typed handles
//!
//! [`Session::register`] returns a [`Handle`]`<M>` carrying the
//! maintainer's concrete type, so reads need no downcasts and no
//! turbofish: [`Session::get`] / [`Session::get_mut`] hand back `&M` /
//! `&mut M` directly, and [`Session::query`] runs a charged closure
//! against the concrete maintainer and the session's own context.
//!
//! # Query charging
//!
//! [`Session::ask`] routes a [`QueryRequest`] to one maintainer;
//! [`Session::ask_all`] fans it to every maintainer that supports it
//! (the rest answer `Unsupported` without charging), with rounds
//! composing by max across the fan-out — the cross-checking mode for
//! running a maintainer against its baselines on one cluster. Every
//! answer is charged on the session's cluster and receipted as a
//! [`QueryReport`]; the [`SessionStats::per_maintainer`] breakdown
//! separates ingest rounds from query rounds, which is exactly where
//! the maintained-solution vs recompute-on-read asymmetry (paper
//! Section 2.1) becomes measurable.
//!
//! # Machine groups
//!
//! The cluster is partitioned into per-maintainer
//! [`MachineGroup`]s (contiguous, near-even sub-ranges, in
//! registration order). After every chunk the session audits each
//! maintainer's standing state against **its own group's** capacity:
//! in strict mode an overrun is
//! [`MpcError::ClusterMemoryExceeded`] *naming the offending
//! maintainer and its group*; in permissive mode it is recorded
//! against that maintainer in the rollup. Provision clusters
//! accordingly: `k` sketch-heavy maintainers need `k×` the machines a
//! single one would (see `MpcConfig::builder`'s defaults).
//!
//! # Execution model
//!
//! The *accounted* parallelism above (rounds max-composing across
//! machine groups) is independent of how the simulation is executed
//! on the host. The session runs in one of two host modes, selected
//! by [`Session::with_workers`] (default: the `MPC_WORKERS`
//! environment variable, else 1):
//!
//! * **Serial** (`workers == 1`): everything on the calling thread,
//!   no pool, no synchronization — the reference engine.
//! * **Parallel** (`workers ≥ 2`): a `workers`-lane
//!   [`WorkerPool`] is attached to the session and its context. Each
//!   chunk (and each `ask_all` fan-out) dispatches one *branch job*
//!   per maintainer: the maintainer box moves to a worker thread
//!   together with a forked recording context
//!   (`MpcContext::fork_for_branch`) and runs its ingest/answer
//!   there, with per-worker scratch state (forks clone the context,
//!   maintainers own their scratch). Inside a branch, pool-aware
//!   structures steal work at a finer grain through `MpcContext::
//!   pool` (sketch-arena vertex blocks, per-tour Euler-tour shards).
//!   A pipelined front door additionally overlaps normalize → chunk
//!   of the next chunk with the fan-out of the current one.
//!
//! **Why the accounting is unchanged:** a forked context records
//! every charging operation as an `MpcEvent`; after the branches
//! finish, the master context *replays* each branch's log in
//! registration order inside the very same `BatchAudit` +
//! `parallel_begin`/`branch`/`end` structure the serial engine uses.
//! Every charge is a pure function of the configuration and the call
//! arguments, so replay reproduces rounds, words, peaks, violations,
//! and per-maintainer breakdowns bit-for-bit; thread scheduling can
//! reorder *execution*, never *measurement*. Results are therefore
//! identical at every worker count, which
//! `tests/session_parallel_equivalence.rs` pins suite-wide. The one
//! caveat: in strict mode an error can be *detected* at a different
//! point than serial execution would detect it when co-scheduled
//! maintainers share machines (a fork sees pre-chunk loads), and on
//! any `Err` the set of maintainers that ingested the failing chunk
//! may differ — the session is documented inconsistent-on-`Err` in
//! both modes.
//!
//! # Durability
//!
//! [`Session::checkpoint`] serializes the whole session — context,
//! stats rollup, and every maintainer's accumulated state (sketch
//! banks, Euler-tour shards, per-copy randomness seeds) — into one
//! `mpc-snapshot` container, and [`Session::restore`] rebuilds it
//! through a [`MaintainerRegistry`] mapping each [`Maintain::name`]
//! to its decoder. Three contracts make the checkpoint a *true*
//! suspend point rather than an approximate save:
//!
//! * **Host-side, zero charged rounds.** Checkpointing is an
//!   operational concern of the simulation host, not a protocol phase
//!   of the simulated cluster: neither `checkpoint` nor `restore`
//!   touches the accounted round/word counters, so an interrupted-
//!   and-resumed run reports exactly the costs of an uninterrupted
//!   one. (A real MPC deployment would pay one converge-cast to
//!   persist state; modeling that charge is explicitly out of scope —
//!   the simulator measures the *algorithm*, not the fault-tolerance
//!   of its host.)
//! * **Bit-identical continuation.** Randomness is seed-derived
//!   everywhere (save accumulated state, rebuild derived state), so a
//!   restored session continues sampling, answering, and accounting
//!   exactly where the original would have — `SessionStats`, query
//!   receipts, and sampler outcomes are equal as values from that
//!   point on, at every `MPC_WORKERS` setting.
//! * **Monotonic stream epoch.** Every update submission bumps
//!   [`Session::stream_epoch`], the epoch is embedded in the snapshot
//!   header, and [`Session::restore_checked`] rejects a stale file
//!   with the typed [`SnapshotError::EpochMismatch`] instead of
//!   silently rewinding (and thereby forking) the stream history.
//!
//! Host knobs — worker count, pool — are deliberately *not*
//! persisted: a snapshot taken at `MPC_WORKERS=4` restores into a
//! serial process and vice versa, because execution mode never
//! affects results. `tests/session_checkpoint.rs` pins the full
//! kill/restore/continue equivalence; the checkpoint's per-maintainer
//! section sizes land in `MaintainerStats::checkpoint_bytes` (which
//! `==` ignores, keeping checkpointed and uninterrupted runs equal).
//!
//! # Examples
//!
//! ```
//! use mpc_stream_core::{Connectivity, ConnectivityConfig, QueryRequest, Session};
//! use mpc_graph::ids::Edge;
//! use mpc_graph::update::Update;
//! use mpc_sim::MpcConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = MpcConfig::builder(32, 0.5).local_capacity(1 << 14).build();
//! let mut session = Session::new(cfg);
//! let conn = session.register(Connectivity::new(32, ConnectivityConfig::default(), 7));
//! let reports = session.apply([
//!     Update::Insert(Edge::new(0, 1)),
//!     Update::Insert(Edge::new(1, 2)),
//! ])?;
//! assert_eq!(reports.len(), 1); // one chunk × one maintainer
//! // Typed read access: no downcast, no Option.
//! assert!(session.get(conn).connected(0, 2));
//! // Charged query plane: the answer is receipted on the cluster.
//! let answer = session.ask(conn, &QueryRequest::Connected(0, 2))?;
//! assert_eq!(answer.as_bool(), Some(true));
//! assert!(session.query_reports()[0].rounds > 0);
//! # Ok(())
//! # }
//! ```

use crate::connectivity::Connectivity;
use crate::query::{canonical_component_count, unsupported_query, QueryRequest, QueryResponse};
use crate::robust::RobustConnectivity;
use crate::streaming::StreamingConnectivity;
use crate::vertex_dynamic::VertexDynamicConnectivity;
use mpc_graph::ids::VertexId;
use mpc_graph::update::{Batch, Update, WeightedBatch, WeightedUpdate};
use mpc_sim::{
    BatchAudit, BatchReport, MachineGroup, MpcConfig, MpcContext, MpcError, MpcEvent,
    MpcStreamError, QueryReport, SessionStats, WorkerPool,
};
use mpc_snapshot::{
    load_section, save_section, Persist, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
};
use std::any::Any;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::path::Path;
use std::sync::{mpsc, Arc};

/// A batch-dynamic graph structure that can be driven through the
/// unified [`Session`] engine.
///
/// Implementors supply the identification hooks and [`Maintain::
/// ingest`], the error-unified batch application; the provided
/// [`Maintain::apply_batch`] wraps ingestion with the standard
/// round/communication/audit measurement and returns the unified
/// [`BatchReport`].
///
/// The `Any` supertrait is an implementation detail of the typed
/// [`Handle`] accessors ([`Session::get`] and friends re-express the
/// downcast internally, where handle provenance makes it infallible).
/// The `Send` supertrait is what lets the parallel executor move a
/// maintainer to a worker thread for the duration of one branch (the
/// session moves it back before returning, so the serial API is
/// unchanged); maintainers are plain owned state, so this is free.
pub trait Maintain: Any + Send {
    /// A short stable name for reports and diagnostics.
    fn name(&self) -> &'static str;

    /// Number of vertices (or vertex slots) this maintainer covers.
    fn n(&self) -> usize;

    /// Current memory footprint of the maintained state, in words.
    fn words(&self) -> u64;

    /// Cumulative `ℓ0`-sampler failures absorbed so far (0 for
    /// maintainers without samplers).
    fn l0_failures(&self) -> u64 {
        0
    }

    /// Checks internal invariants (cheap by default; structures with
    /// an expensive validator keep it on their inherent surface).
    ///
    /// # Errors
    ///
    /// [`MpcStreamError::Internal`] when an invariant is broken.
    fn validate(&self) -> Result<(), MpcStreamError> {
        Ok(())
    }

    /// Applies one unweighted batch, converting every failure into
    /// the workspace-wide [`MpcStreamError`].
    ///
    /// # Errors
    ///
    /// See [`MpcStreamError`] for the failure classes.
    fn ingest(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), MpcStreamError>;

    /// Applies one weighted batch. Weight-aware maintainers (the MSF
    /// family) override this; the default strips weights and
    /// delegates to [`Maintain::ingest`].
    ///
    /// # Errors
    ///
    /// See [`MpcStreamError`].
    fn ingest_weighted(
        &mut self,
        batch: &WeightedBatch,
        ctx: &mut MpcContext,
    ) -> Result<(), MpcStreamError> {
        self.ingest(&batch.unweighted(), ctx)
    }

    /// Applies one batch and reports its measured consumption — the
    /// unified entry point of the whole workspace.
    ///
    /// # Errors
    ///
    /// See [`MpcStreamError`].
    fn apply_batch(
        &mut self,
        batch: &Batch,
        ctx: &mut MpcContext,
    ) -> Result<BatchReport, MpcStreamError> {
        let audit = BatchAudit::begin(ctx);
        let l0 = self.l0_failures();
        self.ingest(batch, ctx)?;
        Ok(audit.finish(self.name(), batch.len(), self.l0_failures() - l0, ctx))
    }

    /// Weighted counterpart of [`Maintain::apply_batch`].
    ///
    /// # Errors
    ///
    /// See [`MpcStreamError`].
    fn apply_weighted_batch(
        &mut self,
        batch: &WeightedBatch,
        ctx: &mut MpcContext,
    ) -> Result<BatchReport, MpcStreamError> {
        let audit = BatchAudit::begin(ctx);
        let l0 = self.l0_failures();
        self.ingest_weighted(batch, ctx)?;
        Ok(audit.finish(self.name(), batch.len(), self.l0_failures() - l0, ctx))
    }

    /// Answers a typed [`QueryRequest`] against the current state,
    /// charging the answer's rounds and communication through `ctx` —
    /// the read-side counterpart of [`Maintain::ingest`].
    ///
    /// Implementors must decide support *before* charging: a query
    /// this maintainer cannot serve returns
    /// [`MpcStreamError::Unsupported`] with the context untouched
    /// (that is what lets [`Session::ask_all`] skip non-supporting
    /// maintainers for free). Supported answers must charge at least
    /// the rounds of routing the question and the answer — maintained
    /// solutions answer in `O(1)` rounds, recompute-on-read
    /// structures pay their genuine recomputation.
    ///
    /// The default supports nothing.
    ///
    /// # Errors
    ///
    /// [`MpcStreamError::Unsupported`] for queries outside this
    /// maintainer's vocabulary; [`MpcStreamError::InvalidBatch`] for
    /// malformed arguments (e.g. an out-of-range vertex); any other
    /// variant as the answering protocol requires.
    fn answer(
        &mut self,
        query: &QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<QueryResponse, MpcStreamError> {
        let _ = ctx;
        Err(unsupported_query(self.name(), query))
    }

    /// Whether [`Maintain::answer`] can serve this query — the
    /// charge-free support probe [`Session::ask_all`] consults
    /// *before* opening a parallel branch, so non-supporters never
    /// enter the fan-out at all (they are skipped, not charged, and
    /// never dispatched to a worker).
    ///
    /// Must agree with [`Maintain::answer`]: `supports` returning
    /// `false` for a query `answer` would serve makes `ask_all` miss
    /// that maintainer. The default supports nothing, matching the
    /// default `answer`.
    fn supports(&self, query: &QueryRequest) -> bool {
        let _ = query;
        false
    }

    /// Serializes this maintainer's complete accumulated state into
    /// the writer's open section — the save half of the
    /// checkpoint/restore contract ([`Session::checkpoint`]).
    ///
    /// Implementations delegate to the type's
    /// [`Persist`] impl; the load half is a
    /// [`MaintainerLoader`] registered under this maintainer's
    /// [`Maintain::name`] in a [`MaintainerRegistry`]. The pair must
    /// round-trip: restoring what `save_state` wrote yields a
    /// maintainer that answers, samples, and accounts bit-identically
    /// to the original from that point on.
    fn save_state(&self, w: &mut SnapshotWriter);
}

/// Decodes one maintainer's state from its snapshot section — the
/// restore half of [`Maintain::save_state`], registered per
/// maintainer kind in a [`MaintainerRegistry`].
pub type MaintainerLoader = fn(&mut SnapshotReader<'_>) -> Result<Box<dyn Maintain>, SnapshotError>;

/// Maps [`Maintain::name`] strings to their snapshot decoders.
///
/// A snapshot records each maintainer's `name()` next to its state
/// section; [`Session::restore`] looks the name up here to rebuild
/// the concrete type. [`MaintainerRegistry::core`] covers the four
/// maintainers of this crate; downstream crates contribute their own
/// loader sets (`register_snapshot_loaders` in `mpc-kconn`,
/// `mpc-msf`, `mpc-matching`, `mpc-baselines`), and the workspace
/// facade assembles the whole roster as `mpc_stream::full_registry()`.
#[derive(Default)]
pub struct MaintainerRegistry {
    loaders: BTreeMap<&'static str, MaintainerLoader>,
}

impl MaintainerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry covering this crate's maintainers:
    /// `connectivity`, `streaming-connectivity`,
    /// `robust-connectivity`, and `vertex-dynamic-connectivity`.
    pub fn core() -> Self {
        let mut reg = Self::new();
        reg.register("connectivity", |r| Ok(Box::new(Connectivity::load(r)?)));
        reg.register("streaming-connectivity", |r| {
            Ok(Box::new(StreamingConnectivity::load(r)?))
        });
        reg.register("robust-connectivity", |r| {
            Ok(Box::new(RobustConnectivity::load(r)?))
        });
        reg.register("vertex-dynamic-connectivity", |r| {
            Ok(Box::new(VertexDynamicConnectivity::load(r)?))
        });
        reg
    }

    /// Registers a decoder under a maintainer kind name.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name — two crates claiming one kind is a
    /// wiring bug, not a recoverable condition.
    pub fn register(&mut self, name: &'static str, loader: MaintainerLoader) {
        let prev = self.loaders.insert(name, loader);
        assert!(
            prev.is_none(),
            "duplicate snapshot loader for kind {name:?}"
        );
    }

    /// The decoder for a kind, if registered.
    pub fn loader(&self, name: &str) -> Option<MaintainerLoader> {
        self.loaders.get(name).copied()
    }

    /// The registered kind names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        self.loaders.keys().copied().collect()
    }
}

impl std::fmt::Debug for MaintainerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintainerRegistry")
            .field("kinds", &self.names())
            .finish()
    }
}

/// What [`Session::checkpoint`] wrote: the snapshot's stream epoch,
/// its total size, and each maintainer's state-section size in
/// registration order (also recorded into
/// `MaintainerStats::checkpoint_bytes`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointReceipt {
    /// The stream epoch embedded in the snapshot header.
    pub epoch: u64,
    /// Total container size on disk, in bytes.
    pub bytes: u64,
    /// `(Maintain::name(), state-section bytes)` per maintainer, in
    /// registration order.
    pub maintainers: Vec<(String, u64)>,
}

/// Untyped index of a maintainer in a [`Session`], in registration
/// order — the dynamic-access escape hatch ([`Session::maintainer`],
/// [`Session::ask_dyn`]) and the key of the
/// [`SessionStats::per_maintainer`] breakdown.
pub type MaintainerId = usize;

/// A typed handle to a maintainer registered in a [`Session`].
///
/// Returned by [`Session::register`]; carries the maintainer's
/// concrete type, so [`Session::get`] / [`Session::get_mut`] /
/// [`Session::query`] / [`Session::ask`] need no downcasts and
/// cannot fail on a type mismatch. A handle is only meaningful on the
/// session that issued it.
pub struct Handle<M: Maintain> {
    id: MaintainerId,
    _marker: PhantomData<fn() -> M>,
}

impl<M: Maintain> Handle<M> {
    /// The untyped registration index (for dynamic access and the
    /// stats breakdown).
    pub fn id(&self) -> MaintainerId {
        self.id
    }
}

// Manual impls: a handle is Copy/Clone/Debug regardless of `M`.
impl<M: Maintain> Clone for Handle<M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M: Maintain> Copy for Handle<M> {}

impl<M: Maintain> std::fmt::Debug for Handle<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Handle<{}>({})", std::any::type_name::<M>(), self.id)
    }
}

impl<M: Maintain> From<Handle<M>> for MaintainerId {
    fn from(h: Handle<M>) -> MaintainerId {
        h.id
    }
}

/// The unified driver engine: one accounted cluster, any number of
/// maintainers, one update stream.
///
/// Updates submitted through [`Session::apply`] (or
/// [`Session::apply_weighted`]) are by default **normalized** —
/// updates that exactly undo each other inside one submission are
/// cancelled, the paper's Section 1.2 WLOG for its toggle-semantic
/// dynamic-graph contract. Maintainers with *different* stream
/// contracts (e.g. the maximal-matching substrate's set
/// semantics, where a duplicate insert followed by a delete nets to
/// absent) can observe a different result than their direct
/// `apply_batch` would produce on the raw sequence; disable
/// normalization with [`Session::with_normalization`] to forward
/// every submitted update verbatim and let each maintainer apply its
/// own contract. Submissions are then **chunked** into batches of at
/// most
/// [`Session::max_batch`] updates (a legal `Õ(n^φ)` batch always fits
/// one machine), and each chunk is fanned to every registered
/// maintainer inside a parallel scope: the maintainers run on
/// disjoint machine groups, so a chunk costs the *maximum*
/// maintainer's rounds while all communication is accounted.
///
/// After each chunk the session audits the standing state of all
/// maintainers against the cluster's total capacity; overruns are an
/// error in strict mode and a recorded violation otherwise.
///
/// On `Err`, maintainers earlier in registration order may have
/// ingested the failing chunk while later ones have not — the session
/// is left consistent only on `Ok`, like any multi-structure
/// transaction without rollback. Validate with
/// [`Session::validate_all`] before trusting answers after an error.
pub struct Session {
    ctx: MpcContext,
    maintainers: Vec<Box<dyn Maintain>>,
    stats: SessionStats,
    max_batch: usize,
    normalize: bool,
    last_query_reports: Vec<QueryReport>,
    workers: usize,
    pool: Option<Arc<WorkerPool>>,
    /// Monotonic update-submission counter, embedded in snapshot
    /// headers so a stale checkpoint is typed-rejected at restore.
    stream_epoch: u64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("maintainers", &self.names())
            .field("max_batch", &self.max_batch)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Creates an empty session owning a fresh context for `cfg`.
    /// The default chunk size is `s / 4` updates — a batch whose
    /// auxiliary structures (≈ 2–3 words per update) are guaranteed
    /// to fit one machine.
    ///
    /// The host worker count defaults to the `MPC_WORKERS`
    /// environment variable (1 — fully serial — when unset); override
    /// with [`Session::with_workers`]. Worker count never affects
    /// results or accounting, only wall-clock (see the module-level
    /// "Execution model" section).
    pub fn new(cfg: MpcConfig) -> Self {
        let max_batch = (cfg.local_capacity() / 4).max(1) as usize;
        let mut session = Session {
            ctx: MpcContext::new(cfg),
            maintainers: Vec::new(),
            stats: SessionStats::default(),
            max_batch,
            normalize: true,
            last_query_reports: Vec::new(),
            workers: 1,
            pool: None,
            stream_epoch: 0,
        };
        session.set_workers(mpc_sim::workers_from_env().unwrap_or(1));
        session
    }

    /// Overrides the chunk size (clamped to at least 1).
    #[must_use]
    pub fn with_max_batch(mut self, updates: usize) -> Self {
        self.max_batch = updates.max(1);
        self
    }

    /// Sets the host worker count (clamped to at least 1). `1` is the
    /// fully serial engine — no threads, no pool; `w ≥ 2` spawns a
    /// `w`-lane [`WorkerPool`] that fans chunks and `ask_all` queries
    /// out one branch per maintainer and overlaps chunk preparation
    /// with fan-out. Execution results and all accounting are
    /// bit-identical at every worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.set_workers(workers);
        self
    }

    /// Non-consuming form of [`Session::with_workers`].
    pub fn set_workers(&mut self, workers: usize) {
        let workers = workers.max(1);
        self.workers = workers;
        self.pool = if workers > 1 {
            Some(Arc::new(WorkerPool::new(workers)))
        } else {
            None
        };
        self.ctx.set_pool(self.pool.clone());
    }

    /// The configured host worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enables or disables submission-level normalization (default:
    /// enabled). Disabled, every submitted update is forwarded
    /// verbatim — the right choice when set-semantic or
    /// insertion-only maintainers should see (and accept or reject)
    /// the raw sequence under their own contracts.
    #[must_use]
    pub fn with_normalization(mut self, enabled: bool) -> Self {
        self.normalize = enabled;
        self
    }

    /// The maximum updates per fanned-out batch.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Registers a maintainer, returning its typed [`Handle`]. The
    /// handle is the key to every read accessor — [`Session::get`],
    /// [`Session::get_mut`], [`Session::query`], [`Session::ask`].
    pub fn register<M: Maintain>(&mut self, maintainer: M) -> Handle<M> {
        let id = self.register_boxed(Box::new(maintainer));
        Handle {
            id,
            _marker: PhantomData,
        }
    }

    /// Registers an already-boxed maintainer (for heterogeneous
    /// collections built elsewhere), returning its untyped id — the
    /// boxed path keeps only the dynamic surface
    /// ([`Session::maintainer`], [`Session::ask_dyn`]).
    pub fn register_boxed(&mut self, maintainer: Box<dyn Maintain>) -> MaintainerId {
        self.stats.register_maintainer(maintainer.name());
        self.maintainers.push(maintainer);
        self.maintainers.len() - 1
    }

    /// Number of registered maintainers.
    pub fn maintainer_count(&self) -> usize {
        self.maintainers.len()
    }

    /// The registered maintainers' names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.maintainers.iter().map(|m| m.name()).collect()
    }

    /// The owned accounting context.
    pub fn ctx(&self) -> &MpcContext {
        &self.ctx
    }

    /// Mutable access to the context (for interleaving externally
    /// driven structures or charged queries on the same cluster).
    pub fn ctx_mut(&mut self) -> &mut MpcContext {
        &mut self.ctx
    }

    /// The lifetime rollup.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Typed read access to a registered maintainer — infallible by
    /// construction: the handle's type was fixed at
    /// [`Session::register`] time.
    ///
    /// # Panics
    ///
    /// Panics if the handle was issued by a *different* session (the
    /// only way its index or type can disagree with this session's
    /// registry).
    pub fn get<M: Maintain>(&self, handle: Handle<M>) -> &M {
        let m: &dyn Any = self.maintainers[handle.id].as_ref();
        m.downcast_ref::<M>()
            // lint: allow(panic-reachability): documented "# Panics" contract — a foreign session's handle is a programmer error
            .expect("a typed Handle always matches its own session's registry; this handle was issued by a different Session")
    }

    /// Typed mutable access to a registered maintainer.
    ///
    /// # Panics
    ///
    /// As [`Session::get`].
    pub fn get_mut<M: Maintain>(&mut self, handle: Handle<M>) -> &mut M {
        let m: &mut dyn Any = self.maintainers[handle.id].as_mut();
        m.downcast_mut::<M>()
            // lint: allow(panic-reachability): documented "# Panics" contract — a foreign session's handle is a programmer error
            .expect("a typed Handle always matches its own session's registry; this handle was issued by a different Session")
    }

    /// Runs a charged closure against a registered maintainer: the
    /// closure receives the concrete maintainer **and** the session's
    /// own accounting context, so its rounds land on the same cluster
    /// the updates are charged to (the borrow of the maintainer list
    /// and the context split safely). For the common typed questions
    /// prefer [`Session::ask`], which also receipts the charge; this
    /// is the escape hatch for structure-specific protocols.
    ///
    /// # Panics
    ///
    /// As [`Session::get`].
    pub fn query<M: Maintain, R>(
        &mut self,
        handle: Handle<M>,
        f: impl FnOnce(&mut M, &mut MpcContext) -> R,
    ) -> R {
        let m: &mut dyn Any = self.maintainers[handle.id].as_mut();
        let m = m
            .downcast_mut::<M>()
            // lint: allow(panic-reachability): documented "# Panics" contract — a foreign session's handle is a programmer error
            .expect("a typed Handle always matches its own session's registry; this handle was issued by a different Session");
        f(m, &mut self.ctx)
    }

    /// Dynamic access to a registered maintainer (trait surface
    /// only).
    pub fn maintainer(&self, id: MaintainerId) -> Option<&dyn Maintain> {
        self.maintainers.get(id).map(Box::as_ref)
    }

    /// Asks one maintainer a typed [`QueryRequest`]. The answer is
    /// charged on the session's cluster, receipted as a
    /// [`QueryReport`] (see [`Session::query_reports`]), and rolled
    /// into the per-maintainer stats breakdown.
    ///
    /// # Errors
    ///
    /// [`MpcStreamError::Unsupported`] if this maintainer cannot
    /// serve the query; otherwise whatever the answering protocol
    /// reports.
    ///
    /// # Panics
    ///
    /// As [`Session::get`], for a foreign handle (the handle's type
    /// is checked against the registry before the question is
    /// routed).
    pub fn ask<M: Maintain>(
        &mut self,
        handle: Handle<M>,
        query: &QueryRequest,
    ) -> Result<QueryResponse, MpcStreamError> {
        let _typed: &M = self.get(handle);
        self.ask_dyn(handle.id, query)
    }

    /// Untyped [`Session::ask`], for maintainers registered through
    /// [`Session::register_boxed`].
    ///
    /// # Errors
    ///
    /// As [`Session::ask`], plus [`MpcStreamError::Internal`] for an
    /// unknown id. On any error the previous receipts are cleared —
    /// [`Session::query_reports`] never carries a stale charge.
    pub fn ask_dyn(
        &mut self,
        id: MaintainerId,
        query: &QueryRequest,
    ) -> Result<QueryResponse, MpcStreamError> {
        self.last_query_reports.clear();
        let m = self
            .maintainers
            .get_mut(id)
            .ok_or_else(|| MpcStreamError::Internal(format!("no maintainer with id {id}")))?;
        let rounds = self.ctx.stats().rounds;
        let words = self.ctx.stats().words_communicated;
        let response = m.answer(query, &mut self.ctx)?;
        let report = QueryReport {
            maintainer: m.name(),
            query: query.to_string(),
            rounds: self.ctx.stats().rounds - rounds,
            words: self.ctx.stats().words_communicated - words,
        };
        self.stats.absorb_query(id, &report);
        self.stats.record_query_phase(report.rounds, report.words);
        self.last_query_reports = vec![report];
        Ok(response)
    }

    /// Fans a [`QueryRequest`] to **every** maintainer that supports
    /// it, in a parallel scope — the maintainers answer on their
    /// disjoint machine groups, so the fan-out costs the *maximum*
    /// answerer's rounds while all communication is accounted. This
    /// is the cross-checking mode: one call compares a maintainer's
    /// answer against its baselines on one accounted cluster.
    ///
    /// Returns `(id, response)` pairs in registration order, one per
    /// supporting maintainer (empty if none support the query); the
    /// per-answer receipts are in [`Session::query_reports`].
    ///
    /// Support is decided by [`Maintain::supports`] *before* the
    /// parallel scope opens: a non-supporting maintainer is never
    /// invoked, never charged, and never gets a branch — the
    /// "non-supporters are free" contract holds even for a maintainer
    /// whose `answer` would (incorrectly) charge before declining.
    ///
    /// # Errors
    ///
    /// The first *real* failure (anything but `Unsupported`) aborts
    /// the fan-out.
    pub fn ask_all(
        &mut self,
        query: &QueryRequest,
    ) -> Result<Vec<(MaintainerId, QueryResponse)>, MpcStreamError> {
        let supported: Vec<bool> = self.maintainers.iter().map(|m| m.supports(query)).collect();
        if self.pool.is_some() && supported.iter().filter(|&&s| s).count() > 1 {
            return self.ask_all_parallel(query, &supported);
        }
        let phase_rounds = self.ctx.stats().rounds;
        let phase_words = self.ctx.stats().words_communicated;
        let mut responses = Vec::new();
        let mut reports: Vec<(MaintainerId, QueryReport)> = Vec::new();
        let mut failure: Option<MpcStreamError> = None;
        self.ctx.parallel_begin();
        for (id, m) in self.maintainers.iter_mut().enumerate() {
            if !supported[id] {
                // Skipped before the branch opens: free by construction.
                continue;
            }
            let rounds = self.ctx.stats().rounds;
            let words = self.ctx.stats().words_communicated;
            match m.answer(query, &mut self.ctx) {
                Ok(response) => {
                    reports.push((
                        id,
                        QueryReport {
                            maintainer: m.name(),
                            query: query.to_string(),
                            rounds: self.ctx.stats().rounds - rounds,
                            words: self.ctx.stats().words_communicated - words,
                        },
                    ));
                    responses.push((id, response));
                }
                // Defensive: a claimed supporter that still declines is
                // treated as free (its contract says ctx is untouched).
                Err(MpcStreamError::Unsupported(_)) => {}
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
            self.ctx.parallel_branch();
        }
        self.ctx.parallel_end();
        for (id, report) in &reports {
            self.stats.absorb_query(*id, report);
        }
        self.stats.record_query_phase(
            self.ctx.stats().rounds - phase_rounds,
            self.ctx.stats().words_communicated - phase_words,
        );
        self.last_query_reports = reports.into_iter().map(|(_, r)| r).collect();
        match failure {
            Some(e) => Err(e),
            None => Ok(responses),
        }
    }

    /// Parallel [`Session::ask_all`]: every supporting maintainer
    /// answers on a worker thread against a forked recording context;
    /// the logs are replayed on the master in registration order
    /// inside the same parallel scope the serial path uses, so the
    /// receipts, rollup, and round max-composition are bit-identical.
    fn ask_all_parallel(
        &mut self,
        query: &QueryRequest,
        supported: &[bool],
    ) -> Result<Vec<(MaintainerId, QueryResponse)>, MpcStreamError> {
        type AskOutcome = (
            Box<dyn Maintain>,
            Vec<MpcEvent>,
            Result<QueryResponse, MpcStreamError>,
            (u64, u64),
        );
        let pool = self.pool.clone().expect("parallel ask_all requires a pool");
        let phase_rounds = self.ctx.stats().rounds;
        let phase_words = self.ctx.stats().words_communicated;
        let count = self.maintainers.len();
        let query = *query;
        let (tx, rx) = mpsc::channel::<(usize, AskOutcome)>();
        let mut slots: Vec<Option<AskOutcome>> = Vec::new();
        slots.resize_with(count, || None);
        let mut skipped: Vec<Option<Box<dyn Maintain>>> = Vec::new();
        skipped.resize_with(count, || None);
        for (id, mut m) in std::mem::take(&mut self.maintainers)
            .into_iter()
            .enumerate()
        {
            if !supported[id] {
                skipped[id] = Some(m);
                continue;
            }
            let mut fork = self.ctx.fork_for_branch();
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                let fork_rounds = fork.stats().rounds;
                let fork_words = fork.stats().words_communicated;
                let result = m.answer(&query, &mut fork);
                let fork_delta = (
                    fork.stats().rounds - fork_rounds,
                    fork.stats().words_communicated - fork_words,
                );
                let _ = tx.send((id, (m, fork.take_log(), result, fork_delta)));
            }));
        }
        drop(tx);
        for (id, outcome) in rx {
            slots[id] = Some(outcome);
        }
        // Replay in registration order, mirroring the serial loop.
        let mut responses = Vec::new();
        let mut reports: Vec<(MaintainerId, QueryReport)> = Vec::new();
        let mut failure: Option<MpcStreamError> = None;
        self.ctx.parallel_begin();
        for id in 0..count {
            if let Some(m) = skipped[id].take() {
                self.maintainers.push(m);
                continue;
            }
            let (m, log, result, fork_delta) =
                slots[id].take().expect("every dispatched branch reports");
            if failure.is_none() {
                let rounds = self.ctx.stats().rounds;
                let words = self.ctx.stats().words_communicated;
                match result {
                    Ok(response) => match self.ctx.replay(&log) {
                        Ok(()) => {
                            let report = QueryReport {
                                maintainer: m.name(),
                                query: query.to_string(),
                                rounds: self.ctx.stats().rounds - rounds,
                                words: self.ctx.stats().words_communicated - words,
                            };
                            // Differential fork/replay audit: every
                            // charge is a pure function of (config,
                            // args), so what the fork recorded must be
                            // exactly what replay re-charged.
                            debug_assert_eq!(
                                (report.rounds, report.words),
                                fork_delta,
                                "fork/replay accounting drift for `{}`",
                                report.maintainer
                            );
                            reports.push((id, report));
                            responses.push((id, response));
                            self.ctx.parallel_branch();
                        }
                        Err(e) => failure = Some(MpcStreamError::from(e)),
                    },
                    Err(MpcStreamError::Unsupported(_)) => {
                        // Defensive, as in the serial loop: replay
                        // whatever (per contract: nothing) it charged.
                        let _ = self.ctx.replay(&log);
                        self.ctx.parallel_branch();
                    }
                    Err(e) => {
                        // Serial charges the failing answer's partial
                        // work before aborting the fan-out.
                        let _ = self.ctx.replay(&log);
                        failure = Some(e);
                    }
                }
            }
            self.maintainers.push(m);
        }
        self.ctx.parallel_end();
        for (id, report) in &reports {
            self.stats.absorb_query(*id, report);
        }
        self.stats.record_query_phase(
            self.ctx.stats().rounds - phase_rounds,
            self.ctx.stats().words_communicated - phase_words,
        );
        self.last_query_reports = reports.into_iter().map(|(_, r)| r).collect();
        match failure {
            Some(e) => Err(e),
            None => Ok(responses),
        }
    }

    /// The per-answer receipts of the most recent [`Session::ask`] /
    /// [`Session::ask_all`] call.
    pub fn query_reports(&self) -> &[QueryReport] {
        &self.last_query_reports
    }

    /// The machine group a maintainer's standing state is audited
    /// against: the cluster is partitioned near-evenly across the
    /// registered maintainers, in registration order. `None` for an
    /// unknown id.
    pub fn machine_group(&self, id: MaintainerId) -> Option<MachineGroup> {
        MachineGroup::partition(self.ctx.config().machines(), self.maintainers.len())
            .get(id)
            .copied()
    }

    /// Total standing state across all maintainers, in words.
    pub fn state_words(&self) -> u64 {
        self.maintainers.iter().map(|m| m.words()).sum()
    }

    /// Runs every maintainer's invariant validator.
    ///
    /// # Errors
    ///
    /// The first maintainer's [`MpcStreamError::Internal`], if any.
    pub fn validate_all(&self) -> Result<(), MpcStreamError> {
        for m in &self.maintainers {
            m.validate()?;
        }
        Ok(())
    }

    /// The monotonic update-submission counter: bumped by every
    /// [`Session::apply`] / [`Session::apply_weighted`] call and
    /// embedded in every checkpoint's header. Pass the value returned
    /// by the latest [`Session::checkpoint`] to
    /// [`Session::restore_checked`] to reject stale files.
    pub fn stream_epoch(&self) -> u64 {
        self.stream_epoch
    }

    /// Serializes the whole session — context, stats rollup, and
    /// every maintainer's accumulated state — into one atomic
    /// snapshot file (written to a temporary sibling, then renamed).
    ///
    /// This is a **host-side** operation: it charges zero rounds and
    /// zero words on the simulated cluster (see the module-level
    /// "Durability" section for why). The only session mutation is
    /// bookkeeping: each maintainer's state-section size is recorded
    /// in `MaintainerStats::checkpoint_bytes`, a field `==` ignores.
    ///
    /// Call between submissions — a checkpoint mid-`apply` is
    /// unrepresentable, since `&mut self` methods cannot interleave.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on any filesystem failure.
    pub fn checkpoint(
        &mut self,
        path: impl AsRef<Path>,
    ) -> Result<CheckpointReceipt, SnapshotError> {
        let mut w = SnapshotWriter::new(self.stream_epoch);
        w.begin_section("session");
        w.put_usize(self.max_batch);
        w.put_bool(self.normalize);
        let names: Vec<String> = self.names().iter().map(ToString::to_string).collect();
        names.save(&mut w);
        w.end_section();
        save_section(&mut w, "context", &self.ctx);
        let mut maintainers = Vec::with_capacity(self.maintainers.len());
        for (id, m) in self.maintainers.iter().enumerate() {
            w.begin_section(&format!("maintainer.{id}"));
            m.save_state(&mut w);
            let bytes = w.end_section();
            self.stats.per_maintainer[id].checkpoint_bytes = bytes;
            maintainers.push((m.name().to_string(), bytes));
        }
        // Stats go last so the section sizes recorded above are part
        // of the persisted rollup (checkpoint → restore → checkpoint
        // reproduces the identical container).
        save_section(&mut w, "stats", &self.stats);
        let epoch = self.stream_epoch;
        let bytes = w.write_to(path.as_ref())?;
        Ok(CheckpointReceipt {
            epoch,
            bytes,
            maintainers,
        })
    }

    /// Rebuilds a session from a [`Session::checkpoint`] file,
    /// decoding each maintainer through `registry`.
    ///
    /// Host knobs are re-derived, not restored: the worker count
    /// comes from `MPC_WORKERS` exactly as in [`Session::new`]
    /// (execution mode never affects results), and the query-receipt
    /// buffer starts empty. Everything the paper's accounting
    /// observes — context counters, stats rollup, maintainer state,
    /// randomness position — continues bit-identically.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: I/O, a corrupted or truncated
    /// container, or [`SnapshotError::UnknownMaintainer`] when the
    /// registry is missing a kind the snapshot names.
    pub fn restore(
        path: impl AsRef<Path>,
        registry: &MaintainerRegistry,
    ) -> Result<Session, SnapshotError> {
        let snap = Snapshot::read_from(path.as_ref())?;
        Session::from_snapshot(&snap, registry)
    }

    /// [`Session::restore`] plus the stale-checkpoint guard: the
    /// file's stream epoch must equal `expected_epoch` (the value the
    /// latest [`Session::checkpoint`] receipt carried), or the
    /// restore fails with [`SnapshotError::EpochMismatch`] before any
    /// state is decoded.
    ///
    /// # Errors
    ///
    /// As [`Session::restore`], plus the epoch mismatch.
    pub fn restore_checked(
        path: impl AsRef<Path>,
        registry: &MaintainerRegistry,
        expected_epoch: u64,
    ) -> Result<Session, SnapshotError> {
        let snap = Snapshot::read_from(path.as_ref())?;
        if snap.epoch() != expected_epoch {
            return Err(SnapshotError::EpochMismatch {
                expected: expected_epoch,
                found: snap.epoch(),
            });
        }
        Session::from_snapshot(&snap, registry)
    }

    fn from_snapshot(
        snap: &Snapshot,
        registry: &MaintainerRegistry,
    ) -> Result<Session, SnapshotError> {
        let mut r = snap.section("session")?;
        let max_batch = r.take_usize()?;
        let normalize = r.take_bool()?;
        let names = Vec::<String>::load(&mut r)?;
        r.expect_end()?;
        if max_batch == 0 {
            return Err(SnapshotError::Corrupt("session chunk size is zero".into()));
        }
        let ctx: MpcContext = load_section(snap, "context")?;
        let mut maintainers: Vec<Box<dyn Maintain>> = Vec::with_capacity(names.len());
        for (id, name) in names.iter().enumerate() {
            let loader = registry
                .loader(name)
                .ok_or_else(|| SnapshotError::UnknownMaintainer { kind: name.clone() })?;
            let mut mr = snap.section(&format!("maintainer.{id}"))?;
            let m = loader(&mut mr)?;
            mr.expect_end()?;
            if m.name() != name {
                return Err(SnapshotError::Corrupt(format!(
                    "maintainer {id} decoded as kind `{}` but was saved as `{name}`",
                    m.name()
                )));
            }
            maintainers.push(m);
        }
        let mut stats: SessionStats = load_section(snap, "stats")?;
        if stats.per_maintainer.len() != maintainers.len() {
            return Err(SnapshotError::Corrupt(format!(
                "stats cover {} maintainers, snapshot holds {}",
                stats.per_maintainer.len(),
                maintainers.len()
            )));
        }
        // `&'static str` names cannot be fabricated from file bytes;
        // re-bind each entry from the live maintainer it describes.
        for (entry, m) in stats.per_maintainer.iter_mut().zip(&maintainers) {
            entry.name = m.name();
        }
        let mut session = Session {
            ctx,
            maintainers,
            stats,
            max_batch,
            normalize,
            last_query_reports: Vec::new(),
            workers: 1,
            pool: None,
            stream_epoch: snap.epoch(),
        };
        session.set_workers(mpc_sim::workers_from_env().unwrap_or(1));
        Ok(session)
    }

    /// Submits unweighted updates: normalize, chunk, fan out. Returns
    /// one [`BatchReport`] per (chunk, maintainer) pair, in chunk
    /// order then registration order.
    ///
    /// # Errors
    ///
    /// The first maintainer failure, or a strict-mode capacity
    /// overrun of the combined standing state.
    pub fn apply(
        &mut self,
        updates: impl IntoIterator<Item = Update>,
    ) -> Result<Vec<BatchReport>, MpcStreamError> {
        self.stream_epoch += 1;
        if let Some(pool) = self.pool.clone() {
            // Pipelined front door: normalize → chunk runs on a pool
            // lane and streams chunks out, so chunk k+1 is being
            // prepared while chunk k fans out below.
            let updates: Vec<Update> = updates.into_iter().collect();
            let normalize = self.normalize;
            let max_batch = self.max_batch;
            let (tx, rx) = mpsc::channel::<Batch>();
            pool.execute(Box::new(move || {
                let submitted = if normalize {
                    normalize_updates(updates)
                } else {
                    updates
                };
                for c in submitted.chunks(max_batch) {
                    if tx.send(Batch::from_updates(c.to_vec())).is_err() {
                        return; // consumer aborted on an earlier chunk
                    }
                }
            }));
            let mut reports = Vec::new();
            for chunk in rx {
                if !chunk.is_empty() {
                    self.run_chunk_parallel(&Arc::new(chunk), &mut reports)?;
                }
            }
            return Ok(reports);
        }
        let submitted = if self.normalize {
            normalize_updates(updates)
        } else {
            updates.into_iter().collect()
        };
        let chunks: Vec<Batch> = submitted
            .chunks(self.max_batch)
            .map(|c| Batch::from_updates(c.to_vec()))
            .collect();
        self.fan_out(&chunks)
    }

    /// Submits weighted updates; weight-aware maintainers see the
    /// weights, everyone else the projection.
    ///
    /// # Errors
    ///
    /// As [`Session::apply`].
    pub fn apply_weighted(
        &mut self,
        updates: impl IntoIterator<Item = WeightedUpdate>,
    ) -> Result<Vec<BatchReport>, MpcStreamError> {
        self.stream_epoch += 1;
        if let Some(pool) = self.pool.clone() {
            let updates: Vec<WeightedUpdate> = updates.into_iter().collect();
            let normalize = self.normalize;
            let max_batch = self.max_batch;
            let (tx, rx) = mpsc::channel::<WeightedBatch>();
            pool.execute(Box::new(move || {
                let submitted = if normalize {
                    normalize_weighted_updates(updates)
                } else {
                    updates
                };
                for c in submitted.chunks(max_batch) {
                    if tx.send(WeightedBatch::from_updates(c.to_vec())).is_err() {
                        return;
                    }
                }
            }));
            let mut reports = Vec::new();
            for chunk in rx {
                if !chunk.is_empty() {
                    self.run_chunk_parallel(&Arc::new(chunk), &mut reports)?;
                }
            }
            return Ok(reports);
        }
        let submitted = if self.normalize {
            normalize_weighted_updates(updates)
        } else {
            updates.into_iter().collect()
        };
        let chunks: Vec<WeightedBatch> = submitted
            .chunks(self.max_batch)
            .map(|c| WeightedBatch::from_updates(c.to_vec()))
            .collect();
        self.fan_out(&chunks)
    }

    /// Convenience: submit an already-built batch (still normalized
    /// and re-chunked if oversized).
    ///
    /// # Errors
    ///
    /// As [`Session::apply`].
    pub fn apply_batch(&mut self, batch: &Batch) -> Result<Vec<BatchReport>, MpcStreamError> {
        self.apply(batch.iter())
    }

    /// Chunk-by-chunk fan-out with parallel round composition and the
    /// per-chunk capacity audit (the serial engine; the parallel
    /// engine reaches the same per-chunk structure through
    /// [`Session::run_chunk_parallel`]).
    fn fan_out<B>(&mut self, chunks: &[B]) -> Result<Vec<BatchReport>, MpcStreamError>
    where
        B: BatchLike,
    {
        let mut reports = Vec::with_capacity(chunks.len() * self.maintainers.len());
        for chunk in chunks {
            if chunk.len() == 0 {
                continue;
            }
            self.run_chunk_serial(chunk, &mut reports)?;
        }
        Ok(reports)
    }

    /// One chunk through every maintainer, on the calling thread.
    fn run_chunk_serial<B: BatchLike>(
        &mut self,
        chunk: &B,
        reports: &mut Vec<BatchReport>,
    ) -> Result<(), MpcStreamError> {
        // Distribute the chunk to every maintainer's machine
        // group: one sort of the update list (O(1/φ) rounds).
        let chunk_audit = BatchAudit::begin(&self.ctx);
        self.ctx.sort(2 * chunk.len() as u64 + 1);
        self.ctx.parallel_begin();
        let mut failure: Option<MpcStreamError> = None;
        for (id, m) in self.maintainers.iter_mut().enumerate() {
            match chunk.apply_into(m.as_mut(), &mut self.ctx) {
                Ok(report) => {
                    self.stats.absorb(id, &report);
                    reports.push(report);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
            self.ctx.parallel_branch();
        }
        self.ctx.parallel_end();
        if let Some(e) = failure {
            // The failed chunk's rounds remain visible in the raw
            // context stats, but the session rollup only counts
            // chunks every maintainer ingested.
            return Err(e);
        }
        let chunk_report = chunk_audit.finish("session", chunk.len(), 0, &self.ctx);
        self.stats
            .record_chunk(chunk.len(), chunk_report.rounds, chunk_report.words);
        self.audit_capacity()
    }

    /// One chunk through every maintainer, one branch job per
    /// maintainer on the worker pool.
    ///
    /// Each branch moves its maintainer box and a forked recording
    /// context to a worker, runs the plain ingest there (no audit —
    /// measurement happens at replay), and sends everything back. The
    /// master then replays each branch's event log in registration
    /// order inside the same `BatchAudit`/`parallel_begin`/`branch`/
    /// `end` structure the serial engine uses — every charge is a pure
    /// function of `(config, call arguments)`, so the replayed
    /// counters, reports, peaks, and violations are bit-identical to
    /// serial execution. A failing branch charges its partial work and
    /// aborts the chunk exactly like the serial loop; branches later
    /// in registration order are not charged (their maintainers may
    /// still have ingested — the session is documented
    /// inconsistent-on-`Err` either way).
    fn run_chunk_parallel<B: BatchLike>(
        &mut self,
        chunk: &Arc<B>,
        reports: &mut Vec<BatchReport>,
    ) -> Result<(), MpcStreamError> {
        type BranchOutcome = (
            Box<dyn Maintain>,
            Vec<MpcEvent>,
            Result<(), MpcStreamError>,
            u64,
            (u64, u64),
        );
        // lint: allow(panic-reachability): dispatch invariant — the parallel chunk path is gated on a pool being installed
        let pool = self.pool.clone().expect("parallel chunk requires a pool");
        let chunk_audit = BatchAudit::begin(&self.ctx);
        self.ctx.sort(2 * chunk.len() as u64 + 1);
        let count = self.maintainers.len();
        let (tx, rx) = mpsc::channel::<(usize, BranchOutcome)>();
        for (id, mut m) in std::mem::take(&mut self.maintainers)
            .into_iter()
            .enumerate()
        {
            let mut fork = self.ctx.fork_for_branch();
            let chunk = Arc::clone(chunk);
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                let l0_before = m.l0_failures();
                let fork_rounds = fork.stats().rounds;
                let fork_words = fork.stats().words_communicated;
                let result = chunk.ingest_into(m.as_mut(), &mut fork);
                let l0_delta = m.l0_failures().saturating_sub(l0_before);
                let fork_delta = (
                    fork.stats().rounds - fork_rounds,
                    fork.stats().words_communicated - fork_words,
                );
                let _ = tx.send((id, (m, fork.take_log(), result, l0_delta, fork_delta)));
            }));
        }
        drop(tx);
        let mut slots: Vec<Option<BranchOutcome>> = Vec::new();
        slots.resize_with(count, || None);
        for (id, outcome) in rx {
            slots[id] = Some(outcome);
        }
        // Replay in registration order, mirroring run_chunk_serial.
        self.ctx.parallel_begin();
        let mut failure: Option<MpcStreamError> = None;
        for (id, slot) in slots.into_iter().enumerate() {
            // lint: allow(panic-reachability): join invariant — every spawned branch job sends exactly one outcome
            let (m, log, result, l0_delta, fork_delta) = slot.expect("every branch job reports");
            if failure.is_none() {
                let audit = BatchAudit::begin(&self.ctx);
                match result {
                    Ok(()) => match self.ctx.replay(&log) {
                        Ok(()) => {
                            let report = audit.finish(m.name(), chunk.len(), l0_delta, &self.ctx);
                            // Differential fork/replay audit: every
                            // charge is a pure function of (config,
                            // args), so what the fork recorded must be
                            // exactly what replay re-charged.
                            debug_assert_eq!(
                                (report.rounds, report.words),
                                fork_delta,
                                "fork/replay accounting drift for `{}`",
                                report.maintainer
                            );
                            self.stats.absorb(id, &report);
                            reports.push(report);
                            self.ctx.parallel_branch();
                        }
                        // Replay can fail where the fork did not (strict
                        // mode, co-scheduled machines: the fork saw the
                        // pre-chunk loads, the master sees the replayed
                        // siblings' too) — the master is authoritative.
                        Err(e) => failure = Some(MpcStreamError::from(e)),
                    },
                    Err(e) => {
                        // Serial charges the failing branch's partial
                        // work before aborting the chunk.
                        let _ = self.ctx.replay(&log);
                        failure = Some(e);
                    }
                }
            }
            self.maintainers.push(m);
        }
        self.ctx.parallel_end();
        if let Some(e) = failure {
            return Err(e);
        }
        let chunk_report = chunk_audit.finish("session", chunk.len(), 0, &self.ctx);
        self.stats
            .record_chunk(chunk.len(), chunk_report.rounds, chunk_report.words);
        self.audit_capacity()
    }

    /// Audits every maintainer's standing state against **its own**
    /// machine group's capacity (`group machines × s`). Strict mode
    /// errors, naming the offending maintainer and its group;
    /// permissive mode records the violation against that maintainer
    /// in the rollup. Either way the observed state words land in the
    /// per-maintainer breakdown.
    ///
    /// With more maintainers than machines the groups overlap
    /// (several structures co-scheduled on single machines), so the
    /// per-group checks alone no longer bound any machine's load;
    /// each machine's *combined* standing state is then additionally
    /// audited against `s`, attributed to the machine's largest
    /// state-holder.
    fn audit_capacity(&mut self) -> Result<(), MpcStreamError> {
        let s = self.ctx.config().local_capacity();
        let machines = self.ctx.config().machines();
        let groups = MachineGroup::partition(machines, self.maintainers.len());
        for (id, (m, group)) in self.maintainers.iter().zip(&groups).enumerate() {
            let used = m.words();
            self.stats.observe_state(id, used);
            let capacity = group.capacity(s);
            if used > capacity {
                if self.ctx.config().strict() {
                    return Err(MpcStreamError::Capacity(MpcError::ClusterMemoryExceeded {
                        maintainer: m.name().to_string(),
                        group: *group,
                        used,
                        capacity,
                    }));
                }
                self.stats.record_group_violation(id);
            }
        }
        if self.maintainers.len() > machines {
            let mut per_machine = vec![0u64; machines];
            for (m, group) in self.maintainers.iter().zip(&groups) {
                per_machine[group.start()] += m.words();
            }
            for (machine, &used) in per_machine.iter().enumerate() {
                if used > s {
                    let id = (0..self.maintainers.len())
                        .filter(|&i| groups[i].start() == machine)
                        .max_by_key(|&i| self.maintainers[i].words())
                        // lint: allow(panic-reachability): arithmetic invariant — used > 0 implies a contributing maintainer exists
                        .expect("an overcommitted machine hosts a maintainer");
                    if self.ctx.config().strict() {
                        return Err(MpcStreamError::Capacity(MpcError::ClusterMemoryExceeded {
                            maintainer: self.maintainers[id].name().to_string(),
                            group: groups[id],
                            used,
                            capacity: s,
                        }));
                    }
                    self.stats.record_group_violation(id);
                }
            }
        }
        Ok(())
    }
}

/// Batches the fan-out can drive: length plus the two dispatch forms
/// (audited, for the serial engine; bare ingest, for parallel branches
/// whose audit happens at replay time on the master). `Send + Sync +
/// 'static` lets a chunk be shared across branch jobs behind an `Arc`.
trait BatchLike: Send + Sync + 'static {
    fn len(&self) -> usize;
    fn apply_into(
        &self,
        m: &mut dyn Maintain,
        ctx: &mut MpcContext,
    ) -> Result<BatchReport, MpcStreamError>;
    fn ingest_into(&self, m: &mut dyn Maintain, ctx: &mut MpcContext)
        -> Result<(), MpcStreamError>;
}

impl BatchLike for Batch {
    fn len(&self) -> usize {
        Batch::len(self)
    }

    fn apply_into(
        &self,
        m: &mut dyn Maintain,
        ctx: &mut MpcContext,
    ) -> Result<BatchReport, MpcStreamError> {
        m.apply_batch(self, ctx)
    }

    fn ingest_into(
        &self,
        m: &mut dyn Maintain,
        ctx: &mut MpcContext,
    ) -> Result<(), MpcStreamError> {
        m.ingest(self, ctx)
    }
}

impl BatchLike for WeightedBatch {
    fn len(&self) -> usize {
        WeightedBatch::len(self)
    }

    fn apply_into(
        &self,
        m: &mut dyn Maintain,
        ctx: &mut MpcContext,
    ) -> Result<BatchReport, MpcStreamError> {
        m.apply_weighted_batch(self, ctx)
    }

    fn ingest_into(
        &self,
        m: &mut dyn Maintain,
        ctx: &mut MpcContext,
    ) -> Result<(), MpcStreamError> {
        m.ingest_weighted(self, ctx)
    }
}

/// Validates every batch endpoint against `[0, n)` — the shared
/// legality gate next to [`MpcContext::ensure_batch_fits`], used by
/// the maintainers whose storage would otherwise index out of range.
///
/// # Errors
///
/// [`MpcStreamError::InvalidBatch`] naming the offending edge.
pub fn ensure_endpoints_in(batch: &Batch, n: usize) -> Result<(), MpcStreamError> {
    for u in batch.iter() {
        let e = u.edge();
        if e.v() as usize >= n {
            return Err(MpcStreamError::InvalidBatch(format!(
                "edge {e} has an endpoint outside [0, {n})"
            )));
        }
    }
    Ok(())
}

/// Validates a query's vertex argument against `[0, n)` — the
/// query-side sibling of [`ensure_endpoints_in`], used by every
/// [`Maintain::answer`] implementation whose storage would otherwise
/// index out of range.
///
/// # Errors
///
/// [`MpcStreamError::InvalidBatch`] naming the offending vertex.
pub fn ensure_vertex_in(v: VertexId, n: usize) -> Result<(), MpcStreamError> {
    if v as usize >= n {
        return Err(MpcStreamError::InvalidBatch(format!(
            "query vertex {v} is outside [0, {n})"
        )));
    }
    Ok(())
}

/// The shared batch-routing preamble of the leaf maintainers:
/// endpoint validation, the one-machine legality gate, one exchange
/// routing the batch to its shards, and the control broadcast.
///
/// # Errors
///
/// [`MpcStreamError::InvalidBatch`] or [`MpcStreamError::Capacity`]
/// (state untouched — call before mutating).
pub fn route_batch(batch: &Batch, n: usize, ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
    ensure_endpoints_in(batch, n)?;
    ctx.ensure_batch_fits(2 * batch.len() as u64 + 1)?;
    ctx.exchange(2 * batch.len() as u64 + 1);
    ctx.broadcast(2);
    Ok(())
}

/// Net-effect normalization (the paper's Section 1.2 WLOG): per edge,
/// an update that exactly undoes the previous surviving one cancels
/// with it (insert/delete of the same edge — and, for weighted
/// streams, the same weight). Everything else survives, in arrival
/// order: a duplicate same-direction update or a reweight pair is the
/// *caller's* statement, forwarded for each maintainer to accept or
/// reject under its own contract.
fn normalize<U: Copy>(
    updates: impl IntoIterator<Item = U>,
    edge_of: impl Fn(&U) -> mpc_graph::ids::Edge,
    undoes: impl Fn(&U, &U) -> bool,
) -> Vec<U> {
    let mut pending: BTreeMap<mpc_graph::ids::Edge, Vec<(U, usize)>> = BTreeMap::new();
    for (i, u) in updates.into_iter().enumerate() {
        let stack = pending.entry(edge_of(&u)).or_default();
        if stack.last().is_some_and(|(last, _)| undoes(last, &u)) {
            stack.pop();
        } else {
            stack.push((u, i));
        }
    }
    let mut ordered: Vec<(U, usize)> = pending.into_values().flatten().collect();
    ordered.sort_by_key(|&(_, i)| i);
    ordered.into_iter().map(|(u, _)| u).collect()
}

fn normalize_updates(updates: impl IntoIterator<Item = Update>) -> Vec<Update> {
    normalize(updates, |u| u.edge(), |a, b| a.is_insert() != b.is_insert())
}

fn normalize_weighted_updates(
    updates: impl IntoIterator<Item = WeightedUpdate>,
) -> Vec<WeightedUpdate> {
    normalize(
        updates,
        |u| u.weighted_edge().edge,
        |a, b| {
            a.is_insert() != b.is_insert() && a.weighted_edge().weight == b.weighted_edge().weight
        },
    )
}

// ----- Maintain impls for the core maintainers --------------------

impl Maintain for Connectivity {
    fn name(&self) -> &'static str {
        "connectivity"
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        Connectivity::words(self)
    }

    fn l0_failures(&self) -> u64 {
        self.sampler_failure_count()
    }

    fn ingest(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
        Connectivity::apply_batch(self, batch, ctx)?;
        Ok(())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        Persist::save(self, w);
    }

    fn supports(&self, query: &QueryRequest) -> bool {
        matches!(
            query,
            QueryRequest::Connected(..)
                | QueryRequest::ComponentOf(..)
                | QueryRequest::ComponentCount
                | QueryRequest::SpanningForest
        )
    }

    /// Maintained solution ⇒ `O(1)`-round answers: point queries
    /// route the question to the vertex shard and the answer back
    /// (one exchange); whole-solution reports charge the paper's
    /// output sort (Section 1.1).
    fn answer(
        &mut self,
        query: &QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<QueryResponse, MpcStreamError> {
        match *query {
            QueryRequest::Connected(u, v) => {
                ensure_vertex_in(u.max(v), self.vertex_count())?;
                ctx.exchange(2);
                Ok(QueryResponse::Bool(self.connected(u, v)))
            }
            QueryRequest::ComponentOf(v) => {
                ensure_vertex_in(v, self.vertex_count())?;
                ctx.exchange(2);
                Ok(QueryResponse::Vertex(self.component_of(v)))
            }
            QueryRequest::ComponentCount => {
                Ok(QueryResponse::Count(self.query_component_count(ctx) as u64))
            }
            QueryRequest::SpanningForest => {
                Ok(QueryResponse::Edges(self.query_spanning_forest(ctx)))
            }
            _ => Err(unsupported_query(Maintain::name(self), query)),
        }
    }
}

impl Maintain for StreamingConnectivity {
    fn name(&self) -> &'static str {
        "streaming-connectivity"
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        StreamingConnectivity::words(self)
    }

    /// The Section 4 reference processes the batch as a sequence of
    /// single updates (the batch algorithm at `k = 1`): one exchange
    /// routes the batch, then every update is charged its own round —
    /// `Θ(k)` rounds per k-update chunk, the sequential-structure cost
    /// the batch algorithm's `O(1/φ)` improves on.
    fn ingest(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
        ensure_endpoints_in(batch, self.vertex_count())?;
        ctx.ensure_batch_fits(2 * batch.len() as u64 + 1)?;
        ctx.exchange(2 * batch.len() as u64 + 1);
        for u in batch.iter() {
            ctx.exchange(2);
            self.apply(u)?;
        }
        Ok(())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        Persist::save(self, w);
    }

    fn supports(&self, query: &QueryRequest) -> bool {
        matches!(
            query,
            QueryRequest::Connected(..)
                | QueryRequest::ComponentOf(..)
                | QueryRequest::ComponentCount
                | QueryRequest::SpanningForest
        )
    }

    /// Same maintained-solution charges as `Connectivity` (the
    /// Section 4 reference maintains labels and forest too; only its
    /// *update* path is sequential).
    fn answer(
        &mut self,
        query: &QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<QueryResponse, MpcStreamError> {
        match *query {
            QueryRequest::Connected(u, v) => {
                ensure_vertex_in(u.max(v), self.vertex_count())?;
                ctx.exchange(2);
                Ok(QueryResponse::Bool(self.connected(u, v)))
            }
            QueryRequest::ComponentOf(v) => {
                ensure_vertex_in(v, self.vertex_count())?;
                ctx.exchange(2);
                Ok(QueryResponse::Vertex(self.component_of(v)))
            }
            QueryRequest::ComponentCount => {
                ctx.sort(self.vertex_count() as u64);
                Ok(QueryResponse::Count(canonical_component_count(
                    self.component_labels(),
                )))
            }
            QueryRequest::SpanningForest => {
                let forest = self.spanning_forest();
                ctx.sort(2 * forest.len() as u64);
                Ok(QueryResponse::Edges(forest))
            }
            _ => Err(unsupported_query(Maintain::name(self), query)),
        }
    }
}

impl Maintain for RobustConnectivity {
    fn name(&self) -> &'static str {
        "robust-connectivity"
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        RobustConnectivity::words(self)
    }

    fn l0_failures(&self) -> u64 {
        self.sampler_failure_count()
    }

    fn ingest(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
        RobustConnectivity::apply_batch(self, batch, ctx)?;
        Ok(())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        Persist::save(self, w);
    }

    fn supports(&self, query: &QueryRequest) -> bool {
        matches!(
            query,
            QueryRequest::Connected(..)
                | QueryRequest::ComponentOf(..)
                | QueryRequest::ComponentCount
                | QueryRequest::SpanningForest
        )
    }

    /// Answers from the currently exposed instance at the maintained-
    /// solution charges; reads burn no adaptivity budget (only
    /// consuming deletions do).
    fn answer(
        &mut self,
        query: &QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<QueryResponse, MpcStreamError> {
        match *query {
            QueryRequest::Connected(u, v) => {
                ensure_vertex_in(u.max(v), self.vertex_count())?;
                ctx.exchange(2);
                Ok(QueryResponse::Bool(self.connected(u, v)))
            }
            QueryRequest::ComponentOf(v) => {
                ensure_vertex_in(v, self.vertex_count())?;
                ctx.exchange(2);
                Ok(QueryResponse::Vertex(self.component_of(v)))
            }
            QueryRequest::ComponentCount => {
                ctx.sort(self.vertex_count() as u64);
                Ok(QueryResponse::Count(self.component_count() as u64))
            }
            QueryRequest::SpanningForest => {
                let forest = self.spanning_forest();
                ctx.sort(2 * forest.len() as u64);
                Ok(QueryResponse::Edges(forest))
            }
            _ => Err(unsupported_query(Maintain::name(self), query)),
        }
    }
}

impl Maintain for VertexDynamicConnectivity {
    fn name(&self) -> &'static str {
        "vertex-dynamic-connectivity"
    }

    fn n(&self) -> usize {
        self.capacity()
    }

    fn words(&self) -> u64 {
        VertexDynamicConnectivity::words(self)
    }

    fn l0_failures(&self) -> u64 {
        self.sampler_failure_count()
    }

    fn ingest(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
        VertexDynamicConnectivity::apply_batch(self, batch, ctx)?;
        Ok(())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        Persist::save(self, w);
    }

    fn supports(&self, query: &QueryRequest) -> bool {
        matches!(
            query,
            QueryRequest::Connected(..)
                | QueryRequest::ComponentOf(..)
                | QueryRequest::ComponentCount
                | QueryRequest::SpanningForest
        )
    }

    /// Point queries on inactive vertices are `InvalidBatch` (the
    /// vertex-set contract), charged like the other maintained
    /// connectivity structures otherwise.
    fn answer(
        &mut self,
        query: &QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<QueryResponse, MpcStreamError> {
        match *query {
            QueryRequest::Connected(u, v) => {
                ensure_vertex_in(u.max(v), self.capacity())?;
                // Validate fully before charging: an inactive
                // endpoint must not leak unreceipted rounds.
                let connected = self.connected(u, v).map_err(MpcStreamError::from)?;
                ctx.exchange(2);
                Ok(QueryResponse::Bool(connected))
            }
            QueryRequest::ComponentOf(v) => {
                ensure_vertex_in(v, self.capacity())?;
                let comp = self.component_of(v).map_err(MpcStreamError::from)?;
                ctx.exchange(2);
                Ok(QueryResponse::Vertex(comp))
            }
            QueryRequest::ComponentCount => {
                ctx.sort(self.capacity() as u64);
                Ok(QueryResponse::Count(self.component_count() as u64))
            }
            QueryRequest::SpanningForest => {
                let forest = self.spanning_forest();
                ctx.sort(2 * forest.len() as u64);
                Ok(QueryResponse::Edges(forest))
            }
            _ => Err(unsupported_query(Maintain::name(self), query)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::ConnectivityConfig;
    use mpc_graph::gen;
    use mpc_graph::ids::Edge;
    use mpc_graph::oracle;

    fn cfg(n: usize) -> MpcConfig {
        MpcConfig::builder(n, 0.5).local_capacity(1 << 15).build()
    }

    #[test]
    fn session_drives_one_maintainer_like_direct_use() {
        let n = 48;
        let stream = gen::random_mixed_stream(n, 8, 10, 0.6, 42);
        let snaps = stream.replay();
        let mut session = Session::new(cfg(n));
        let h = session.register(Connectivity::new(n, ConnectivityConfig::default(), 3));
        for (batch, snap) in stream.batches.iter().zip(&snaps) {
            session.apply_batch(batch).expect("valid stream");
            let live: Vec<Edge> = snap.edges().collect();
            let labels = oracle::components(n, live.iter().copied());
            assert_eq!(session.get(h).component_labels(), &labels[..]);
        }
        assert!(session.stats().batches >= stream.batches.len() as u64);
        assert!(session.stats().rounds > 0);
        assert!(session.state_words() > 0);
        session.validate_all().expect("invariants hold");
    }

    #[test]
    fn fan_out_composes_rounds_by_max_not_sum() {
        let n = 16;
        let mut single = Session::new(cfg(n));
        single.register(Connectivity::new(n, ConnectivityConfig::default(), 1));
        let mut double = Session::new(cfg(n));
        double.register(Connectivity::new(n, ConnectivityConfig::default(), 1));
        double.register(Connectivity::new(n, ConnectivityConfig::default(), 2));
        let updates: Vec<Update> = (0..8u32)
            .map(|i| Update::Insert(Edge::new(i, i + 1)))
            .collect();
        single.apply(updates.clone()).expect("apply");
        double.apply(updates).expect("apply");
        // Two identical maintainers in parallel: session rounds stay
        // within a whisker of one (identical branches, max-composed).
        assert_eq!(single.stats().rounds, double.stats().rounds);
        // …while both maintainers' communication is accounted.
        assert!(double.stats().words > single.stats().words);
        assert_eq!(double.stats().maintainer_batches, 2);
    }

    #[test]
    fn chunking_respects_max_batch() {
        let n = 32;
        let mut session = Session::new(cfg(n)).with_max_batch(4);
        session.register(Connectivity::new(n, ConnectivityConfig::default(), 5));
        let updates: Vec<Update> = (0..10u32)
            .map(|i| Update::Insert(Edge::new(i, i + 1)))
            .collect();
        let reports = session.apply(updates).expect("apply");
        // 10 updates at ≤4 per chunk → 3 chunks × 1 maintainer.
        assert_eq!(reports.len(), 3);
        assert_eq!(session.stats().batches, 3);
        assert_eq!(session.stats().updates, 10);
        assert_eq!(session.max_batch(), 4);
    }

    #[test]
    fn normalization_cancels_opposing_updates() {
        let e = Edge::new(0, 1);
        let kept = normalize_updates([
            Update::Insert(e),
            Update::Delete(e),
            Update::Insert(Edge::new(2, 3)),
        ]);
        assert_eq!(kept, vec![Update::Insert(Edge::new(2, 3))]);
        // Odd count: the final operation survives.
        let kept = normalize_updates([Update::Insert(e), Update::Delete(e), Update::Insert(e)]);
        assert_eq!(kept, vec![Update::Insert(e)]);
        // Through a session: a net no-op leaves the graph empty.
        let mut session = Session::new(cfg(8));
        let h = session.register(Connectivity::new(8, ConnectivityConfig::default(), 9));
        session
            .apply([Update::Insert(e), Update::Delete(e)])
            .expect("net no-op");
        assert_eq!(session.get(h).live_edge_count(), 0);
    }

    #[test]
    fn weighted_normalization_keeps_final_weight() {
        use mpc_graph::ids::WeightedEdge;
        let kept = normalize_weighted_updates([
            WeightedUpdate::Insert(WeightedEdge::new(0, 1, 5)),
            WeightedUpdate::Delete(WeightedEdge::new(0, 1, 5)),
            WeightedUpdate::Insert(WeightedEdge::new(0, 1, 9)),
        ]);
        assert_eq!(
            kept,
            vec![WeightedUpdate::Insert(WeightedEdge::new(0, 1, 9))]
        );
    }

    #[test]
    fn weighted_reweight_pair_survives_normalization() {
        // Delete(w=5) then Insert(w=9) is a reweight, not a no-op:
        // the weights differ, so nothing cancels.
        use mpc_graph::ids::WeightedEdge;
        let kept = normalize_weighted_updates([
            WeightedUpdate::Delete(WeightedEdge::new(0, 1, 5)),
            WeightedUpdate::Insert(WeightedEdge::new(0, 1, 9)),
        ]);
        assert_eq!(
            kept,
            vec![
                WeightedUpdate::Delete(WeightedEdge::new(0, 1, 5)),
                WeightedUpdate::Insert(WeightedEdge::new(0, 1, 9)),
            ]
        );
    }

    #[test]
    fn duplicate_same_direction_updates_are_forwarded_not_dropped() {
        let e = Edge::new(0, 1);
        // Normalization only cancels exact undo pairs; a doubled
        // insert is the caller's statement and survives…
        assert_eq!(
            normalize_updates([Update::Insert(e), Update::Insert(e)]),
            vec![Update::Insert(e), Update::Insert(e)]
        );
        // …so each maintainer applies its own contract to the pair.
        // Connectivity applies the paper's batch-level WLOG and nets
        // the toggles out; a set-semantic maintainer must end up with
        // the edge present, not silently empty.
        let mut session = Session::new(cfg(8));
        let conn = session.register(Connectivity::new(8, ConnectivityConfig::default(), 4));
        session
            .apply([Update::Insert(e), Update::Insert(e)])
            .expect("forwarded to maintainer contracts");
        assert_eq!(
            session.get(conn).live_edge_count(),
            0,
            "connectivity's batch WLOG nets even toggles out"
        );
    }

    #[test]
    fn raw_mode_forwards_updates_verbatim() {
        // with_normalization(false): the maintainer sees the raw
        // sequence and applies its own contract — here Connectivity's
        // batch-level WLOG still nets the pair out, but the session
        // itself forwarded both updates (2 counted, not 0).
        let e = Edge::new(0, 1);
        let mut session = Session::new(cfg(8)).with_normalization(false);
        session.register(Connectivity::new(8, ConnectivityConfig::default(), 6));
        let reports = session
            .apply([Update::Insert(e), Update::Delete(e)])
            .expect("legal toggle pair");
        assert_eq!(reports[0].updates, 2, "nothing cancelled by the session");
        assert_eq!(session.stats().updates, 2);
    }

    #[test]
    fn invalid_batch_surfaces_unified_error() {
        let mut session = Session::new(cfg(8));
        session.register(Connectivity::new(8, ConnectivityConfig::default(), 1));
        let err = session
            .apply([Update::Insert(Edge::new(0, 200))])
            .expect_err("endpoint out of range");
        assert!(matches!(err, MpcStreamError::InvalidBatch(_)));
    }

    #[test]
    fn capacity_violation_is_err_via_trait_surface() {
        // A tiny strict cluster: the batch's auxiliary structures
        // cannot be gathered to one 4-word machine.
        let tiny = MpcConfig::builder(16, 0.5)
            .local_capacity(4)
            .machines(2)
            .strict(true)
            .build();
        let mut ctx = MpcContext::new(tiny);
        let mut conn = Connectivity::new(16, ConnectivityConfig::default(), 2);
        let batch = Batch::inserting((0..8u32).map(|i| Edge::new(i, i + 1)));
        let err = Maintain::apply_batch(&mut conn, &batch, &mut ctx).expect_err("must not fit");
        assert!(matches!(err, MpcStreamError::Capacity(_)));
    }

    #[test]
    fn robust_and_vertex_dynamic_and_streaming_work_in_session() {
        let n = 12;
        let mut session = Session::new(cfg(n));
        let r = session.register(RobustConnectivity::new(
            n,
            2,
            8,
            ConnectivityConfig::default(),
            7,
        ));
        let s = session.register(StreamingConnectivity::new(n, 7));
        let mut vd = VertexDynamicConnectivity::with_capacity(n, ConnectivityConfig::default(), 7);
        {
            // Activate every slot up front so the shared stream's
            // endpoints are legal.
            let mut ctx = MpcContext::new(cfg(n));
            vd.add_vertices(n, &mut ctx).expect("capacity");
        }
        let v = session.register(vd);
        let stream = gen::random_insert_stream(n, 4, 6, 13);
        let snaps = stream.replay();
        for (batch, snap) in stream.batches.iter().zip(&snaps) {
            session.apply_batch(batch).expect("insert-only stream");
            let live: Vec<Edge> = snap.edges().collect();
            let labels = oracle::components(n, live.iter().copied());
            assert_eq!(session.get(r).component_labels(), &labels[..]);
            assert_eq!(session.get(s).component_labels(), &labels[..]);
            let vd = session.get(v);
            for e in &live {
                assert!(vd.connected(e.u(), e.v()).expect("active"));
            }
        }
        assert_eq!(
            session.names(),
            vec![
                "robust-connectivity",
                "streaming-connectivity",
                "vertex-dynamic-connectivity"
            ]
        );
    }

    #[test]
    fn budget_exhaustion_maps_to_unified_error() {
        let n = 8;
        let mut session = Session::new(cfg(n));
        let h = session.register(RobustConnectivity::new(
            n,
            1,
            1,
            ConnectivityConfig::default(),
            3,
        ));
        session
            .apply([
                Update::Insert(Edge::new(0, 1)),
                Update::Insert(Edge::new(1, 2)),
            ])
            .expect("inserts are free");
        // Two consuming deletions: the second exhausts the 1×1 budget.
        for step in 0..2 {
            let target = session.get(h).spanning_forest()[0];
            let result = session.apply([Update::Delete(target)]);
            if step == 0 {
                result.expect("first consuming batch is within budget");
            } else {
                let err = result.expect_err("budget spent");
                assert!(matches!(err, MpcStreamError::BudgetExhausted(_)));
            }
        }
    }

    #[test]
    fn typed_handles_give_infallible_access() {
        let mut session = Session::new(cfg(8));
        let h = session.register(Connectivity::new(8, ConnectivityConfig::default(), 1));
        // No Option, no turbofish: the handle carries the type.
        assert_eq!(session.get(h).vertex_count(), 8);
        assert_eq!(session.get_mut(h).component_count(), 8);
        assert_eq!(session.query(h, |c, _ctx| c.vertex_count()), 8);
        assert_eq!(h.id(), 0);
        assert_eq!(MaintainerId::from(h), 0);
        assert!(format!("{h:?}").contains("Handle"));
        let copy = h; // handles are Copy
        assert_eq!(copy.id(), h.id());
        // The dynamic escape hatch still works by id.
        let dynamic = session.maintainer(h.id()).expect("registered");
        assert_eq!(dynamic.name(), "connectivity");
        assert_eq!(dynamic.n(), 8);
        assert_eq!(dynamic.l0_failures(), 0);
        assert!(session.maintainer(9).is_none());
        assert!(format!("{session:?}").contains("connectivity"));
    }

    #[test]
    fn ask_charges_and_receipts_queries() {
        let n = 16;
        let mut session = Session::new(cfg(n));
        let h = session.register(Connectivity::new(n, ConnectivityConfig::default(), 4));
        session
            .apply([
                Update::Insert(Edge::new(0, 1)),
                Update::Insert(Edge::new(1, 2)),
            ])
            .expect("valid stream");
        let rounds_before = session.ctx().stats().rounds;
        let answer = session
            .ask(h, &QueryRequest::Connected(0, 2))
            .expect("supported");
        assert_eq!(answer.as_bool(), Some(true));
        // The answer was charged on the session's own cluster…
        assert!(session.ctx().stats().rounds > rounds_before);
        // …and receipted.
        let reports = session.query_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].maintainer, "connectivity");
        assert_eq!(reports[0].query, "connected(0, 2)");
        assert!(reports[0].rounds > 0 && reports[0].words > 0);
        // …and rolled into the per-maintainer breakdown.
        let m = &session.stats().per_maintainer[0];
        assert_eq!(m.queries, 1);
        assert!(m.query_rounds > 0);
        assert_eq!(session.stats().queries, 1);
        // Component count and forest go through the charged plane too.
        let cc = session
            .ask(h, &QueryRequest::ComponentCount)
            .expect("supported");
        assert_eq!(cc.as_count(), Some(n as u64 - 2));
        let forest = session
            .ask(h, &QueryRequest::SpanningForest)
            .expect("supported");
        assert_eq!(forest.as_edges().map(<[Edge]>::len), Some(2));
        // Unsupported queries are clean errors, charged nothing.
        let rounds = session.ctx().stats().rounds;
        let err = session
            .ask(h, &QueryRequest::MatchingSize)
            .expect_err("connectivity keeps no matching");
        assert!(matches!(err, MpcStreamError::Unsupported(_)));
        assert_eq!(session.ctx().stats().rounds, rounds);
        // Malformed arguments are InvalidBatch.
        let err = session
            .ask(h, &QueryRequest::Connected(0, 200))
            .expect_err("vertex out of range");
        assert!(matches!(err, MpcStreamError::InvalidBatch(_)));
    }

    #[test]
    fn ask_all_fans_out_and_max_composes_rounds() {
        let n = 12;
        let mut session = Session::new(cfg(n));
        let a = session.register(Connectivity::new(n, ConnectivityConfig::default(), 1));
        let b = session.register(StreamingConnectivity::new(n, 2));
        session
            .apply((0..6u32).map(|i| Update::Insert(Edge::new(i, i + 1))))
            .expect("valid stream");
        let rounds_before = session.ctx().stats().rounds;
        let answers = session
            .ask_all(&QueryRequest::ComponentCount)
            .expect("both support component counts");
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].0, a.id());
        assert_eq!(answers[1].0, b.id());
        let expect = QueryResponse::Count(n as u64 - 6);
        assert_eq!(answers[0].1, expect);
        assert_eq!(answers[1].1, expect);
        // Two receipts, both charged…
        assert_eq!(session.query_reports().len(), 2);
        for r in session.query_reports() {
            assert!(r.rounds > 0);
        }
        // …but the session-level phase max-composed the branches:
        // strictly less than the sum of the two answers' rounds.
        let phase = session.ctx().stats().rounds - rounds_before;
        let sum: u64 = session.query_reports().iter().map(|r| r.rounds).sum();
        assert!(phase < sum, "phase {phase} should be < serial sum {sum}");
        assert_eq!(session.stats().query_rounds, phase);
        // A query nobody supports fans out to an empty answer set.
        let none = session
            .ask_all(&QueryRequest::MatchingSize)
            .expect("unsupported everywhere is not an error");
        assert!(none.is_empty());
        assert!(session.query_reports().is_empty());
    }

    #[test]
    fn machine_groups_partition_the_cluster_per_maintainer() {
        let n = 16;
        let mut session = Session::new(cfg(n));
        let a = session.register(Connectivity::new(n, ConnectivityConfig::default(), 1));
        let b = session.register(StreamingConnectivity::new(n, 2));
        let ga = session.machine_group(a.id()).expect("registered");
        let gb = session.machine_group(b.id()).expect("registered");
        let machines = session.ctx().config().machines();
        assert_eq!(ga.machines() + gb.machines(), machines);
        assert_eq!(gb.start(), ga.start() + ga.machines());
        assert!(session.machine_group(2).is_none());
    }

    /// A minimal maintainer with a dial-a-footprint standing state,
    /// for deterministic audit tests.
    struct FixedState {
        name: &'static str,
        n: usize,
        state_words: u64,
    }

    impl Maintain for FixedState {
        fn name(&self) -> &'static str {
            self.name
        }

        fn n(&self) -> usize {
            self.n
        }

        fn words(&self) -> u64 {
            self.state_words
        }

        fn ingest(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
            route_batch(batch, self.n, ctx)
        }

        fn save_state(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.state_words);
        }
    }

    #[test]
    fn strict_group_overrun_names_the_offending_maintainer() {
        // 4 machines × 64 words, split into two 2-machine groups of
        // 128 words each: the oversized maintainer is named, the
        // green neighbor is not.
        let tight = MpcConfig::builder(16, 0.5)
            .local_capacity(64)
            .machines(4)
            .strict(true)
            .build();
        let mut session = Session::new(tight);
        let green = session.register(FixedState {
            name: "green",
            n: 16,
            state_words: 100,
        });
        session.register(FixedState {
            name: "oversized",
            n: 16,
            state_words: 200,
        });
        let err = session
            .apply([Update::Insert(Edge::new(0, 1))])
            .expect_err("200 words cannot fit a 128-word group");
        match err {
            MpcStreamError::Capacity(MpcError::ClusterMemoryExceeded {
                maintainer,
                group,
                used,
                capacity,
            }) => {
                assert_eq!(maintainer, "oversized");
                assert_eq!(used, 200);
                assert_eq!(capacity, 128);
                assert_eq!(group.machines(), 2);
                assert_eq!(group.start(), 2);
            }
            other => panic!("expected ClusterMemoryExceeded, got {other:?}"),
        }
        // The neighbor's audit entry stayed green.
        assert_eq!(
            session.stats().per_maintainer[green.id()].capacity_violations,
            0
        );
        assert_eq!(session.get(green).words(), 100);
    }

    #[test]
    fn overlapping_groups_still_enforce_the_per_machine_bound() {
        // 3 maintainers on a 2-machine cluster: the groups overlap
        // (round-robin single machines: a and c share machine 0), so
        // every *group* check passes (60 <= 64 each) — but machine 0
        // carries 120 > 64 words, which the co-scheduling audit must
        // still catch, attributed to one of the machine's tenants.
        let tight = MpcConfig::builder(16, 0.5)
            .local_capacity(64)
            .machines(2)
            .strict(true)
            .build();
        let mut session = Session::new(tight);
        for name in ["a", "b", "c"] {
            session.register(FixedState {
                name,
                n: 16,
                state_words: 60,
            });
        }
        let err = session
            .apply([Update::Insert(Edge::new(0, 1))])
            .expect_err("machine 0 hosts 2 x 60 words against s = 64");
        match err {
            MpcStreamError::Capacity(MpcError::ClusterMemoryExceeded {
                maintainer,
                used,
                capacity,
                ..
            }) => {
                assert_eq!(used, 120);
                assert_eq!(capacity, 64);
                assert!(["a", "c"].contains(&maintainer.as_str()));
            }
            other => panic!("expected ClusterMemoryExceeded, got {other:?}"),
        }
        // Permissive twin records the overrun instead.
        let permissive = MpcConfig::builder(16, 0.5)
            .local_capacity(64)
            .machines(2)
            .build();
        let mut session = Session::new(permissive);
        for name in ["a", "b", "c"] {
            session.register(FixedState {
                name,
                n: 16,
                state_words: 60,
            });
        }
        session
            .apply([Update::Insert(Edge::new(0, 1))])
            .expect("permissive mode records instead of erroring");
        assert!(session.stats().capacity_violations > 0);
    }

    #[test]
    fn permissive_group_overrun_is_attributed_in_the_breakdown() {
        let tight = MpcConfig::builder(16, 0.5)
            .local_capacity(64)
            .machines(4)
            .build(); // permissive
        let mut session = Session::new(tight);
        let green = session.register(FixedState {
            name: "green",
            n: 16,
            state_words: 100,
        });
        let fat = session.register(FixedState {
            name: "oversized",
            n: 16,
            state_words: 200,
        });
        session
            .apply([Update::Insert(Edge::new(0, 1))])
            .expect("permissive mode records instead of erroring");
        assert_eq!(
            session.stats().per_maintainer[green.id()].capacity_violations,
            0
        );
        assert_eq!(
            session.stats().per_maintainer[fat.id()].capacity_violations,
            1
        );
        assert_eq!(session.stats().per_maintainer[fat.id()].state_words, 200);
        assert_eq!(session.stats().capacity_violations, 1);
    }

    #[test]
    fn permissive_session_records_state_capacity_violation() {
        // 2 machines × 64 words cannot hold a connectivity sketch
        // bank: the audit records (but does not error in permissive
        // mode) a violation.
        let small = MpcConfig::builder(32, 0.5)
            .local_capacity(64)
            .machines(2)
            .build();
        let mut session = Session::new(small).with_max_batch(8);
        session.register(Connectivity::new(32, ConnectivityConfig::default(), 1));
        session
            .apply([Update::Insert(Edge::new(0, 1))])
            .expect("permissive mode absorbs the overrun");
        assert!(session.stats().capacity_violations > 0);
    }
}
