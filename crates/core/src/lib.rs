//! Batch-dynamic connectivity in the streaming MPC model — the core
//! contribution of *"Streaming Graph Algorithms in the Massively
//! Parallel Computation Model"* (Czumaj, Mishra, Mukherjee, PODC'24).
//!
//! [`Connectivity`] maintains, for an evolving graph on `n` vertices:
//!
//! * a **component id** per vertex (the smallest vertex id of its
//!   component),
//! * an explicit **spanning forest**, stored as distributed Euler
//!   tours ([`mpc_etf::DistEtf`]),
//! * `t = Θ(log n)` independent **AGM sketches** per vertex
//!   ([`mpc_sketch::SketchBank`]),
//!
//! and processes batches of up to `Õ(n^φ)` edge insertions and
//! deletions in `O(1/φ)` MPC rounds with `O(n log³ n)` total memory
//! (Theorems 1.1 and 6.7). Queries are free: the solution is
//! maintained explicitly.
//!
//! The update protocol follows the paper exactly:
//!
//! * **Insertions** (Section 6.1): update sketches; build the
//!   auxiliary graph `H` on the touched components at a coordinator
//!   (it has `O(k)` nodes and edges — Claim 6.1); compute a spanning
//!   forest `F_H`; splice the corresponding Euler tours in one
//!   `batch_join`; broadcast the component-relabeling map.
//! * **Deletions** (Section 6.3): update sketches; `batch_split` the
//!   tours along the deleted tree edges; converge-cast the merged
//!   sketches of every resulting piece; run Borůvka over the pieces
//!   at the coordinator, consuming sketch copy `i` at level `i`;
//!   `batch_join` the replacement edges; broadcast new component ids.
//!
//! # Examples
//!
//! ```
//! use mpc_stream_core::{Connectivity, ConnectivityConfig};
//! use mpc_graph::ids::Edge;
//! use mpc_graph::update::{Batch, Update};
//! use mpc_sim::{MpcConfig, MpcContext};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = MpcConfig::builder(64, 0.5).local_capacity(1 << 14).build();
//! let mut ctx = MpcContext::new(cfg);
//! let mut conn = Connectivity::new(64, ConnectivityConfig::default(), 42);
//! conn.apply_batch(
//!     &Batch::from_updates(vec![
//!         Update::Insert(Edge::new(0, 1)),
//!         Update::Insert(Edge::new(1, 2)),
//!     ]),
//!     &mut ctx,
//! )?;
//! assert!(conn.connected(0, 2));
//! assert_eq!(conn.component_of(2), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod connectivity;
pub mod query;
pub mod robust;
pub mod session;
pub mod streaming;
pub mod vertex_dynamic;

pub use connectivity::{Connectivity, ConnectivityConfig, ConnectivityError};
pub use query::{canonical_component_count, unsupported_query, QueryRequest, QueryResponse};
pub use robust::{RobustConnectivity, RobustError};
pub use session::{
    ensure_endpoints_in, ensure_vertex_in, route_batch, CheckpointReceipt, Handle, Maintain,
    MaintainerId, MaintainerLoader, MaintainerRegistry, Session,
};
pub use streaming::StreamingConnectivity;
pub use vertex_dynamic::{VertexDynError, VertexDynamicConnectivity};
