//! Sketch switching: connectivity against an **adaptive** adversary.
//!
//! The paper's guarantees (Section 1.1, "the adversary is oblivious
//! … e.g., they are not adversarially robust \[BJWY22\]") hold only
//! when the update stream is fixed in advance: once an adversary may
//! choose updates after seeing answers, the answers leak the sketch
//! randomness and Lemma 3.5's success probability no longer applies
//! to later queries.
//!
//! [`RobustConnectivity`] applies the standard *sketch switching*
//! technique of Ben-Eliezer, Jayaram, Woodruff, and Yogev to buy
//! robustness at a multiplicative memory cost: it runs `R`
//! independent [`Connectivity`] instances in parallel (all process
//! every batch; `R×` memory and update communication, still `O(1)`
//! rounds per batch since the instances run in parallel on disjoint
//! machine groups) but **exposes** only one instance's answers at a
//! time. Each exposed instance may absorb a bounded number of
//! *randomness-consuming* batches (batches that delete spanning-
//! forest edges and therefore publish sketch samples) before it is
//! retired and the next — never-exposed, hence still effectively
//! oblivious — instance takes over. The supported adaptivity budget
//! is `R × exposure_budget` consuming batches; afterwards updates are
//! refused rather than served with degraded guarantees.

use crate::connectivity::{Connectivity, ConnectivityConfig, ConnectivityError};
use mpc_graph::ids::{Edge, VertexId};
use mpc_graph::update::Batch;
use mpc_sim::MpcContext;
use std::collections::BTreeSet;

/// Errors from [`RobustConnectivity`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RobustError {
    /// Every instance has spent its exposure budget; the adaptivity
    /// guarantee cannot be extended. Rebuild with more instances or a
    /// larger budget.
    BudgetExhausted {
        /// Instances provisioned.
        instances: usize,
        /// Consuming batches each instance absorbed.
        exposure_budget: u64,
    },
    /// The inner connectivity structure rejected the batch.
    Conn(ConnectivityError),
}

impl std::fmt::Display for RobustError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RobustError::BudgetExhausted {
                instances,
                exposure_budget,
            } => write!(
                f,
                "adaptivity budget exhausted: {instances} instances x {exposure_budget} \
                 consuming batches"
            ),
            RobustError::Conn(e) => write!(f, "connectivity: {e}"),
        }
    }
}

impl std::error::Error for RobustError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RobustError::Conn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConnectivityError> for RobustError {
    fn from(e: ConnectivityError) -> Self {
        RobustError::Conn(e)
    }
}

impl From<RobustError> for mpc_sim::MpcStreamError {
    fn from(e: RobustError) -> Self {
        match e {
            RobustError::BudgetExhausted {
                instances,
                exposure_budget,
            } => mpc_sim::MpcStreamError::BudgetExhausted(format!(
                "adaptivity budget exhausted: {instances} instances x {exposure_budget} \
                 consuming batches"
            )),
            RobustError::Conn(inner) => inner.into(),
        }
    }
}

/// Adaptive-adversary connectivity via sketch switching.
///
/// # Examples
///
/// ```
/// use mpc_stream_core::{ConnectivityConfig, RobustConnectivity};
/// use mpc_graph::ids::Edge;
/// use mpc_graph::update::Batch;
/// use mpc_sim::{MpcConfig, MpcContext};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctx = MpcContext::new(
///     MpcConfig::builder(16, 0.5).local_capacity(1 << 14).build(),
/// );
/// let mut rc = RobustConnectivity::new(
///     16,
///     3,  // instances
///     4,  // exposure budget per instance
///     ConnectivityConfig::default(),
///     11,
/// );
/// rc.apply_batch(&Batch::inserting([Edge::new(0, 1), Edge::new(1, 2)]), &mut ctx)?;
/// assert!(rc.connected(0, 2));
/// // Deleting the tree edge {1,2} consumes exposure budget…
/// rc.apply_batch(&Batch::deleting([Edge::new(1, 2)]), &mut ctx)?;
/// assert_eq!(rc.exposures_spent(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RobustConnectivity {
    instances: Vec<Connectivity>,
    /// Index of the currently exposed instance.
    cursor: usize,
    /// Consuming batches absorbed by the current instance.
    current_exposures: u64,
    /// Consuming batches each instance may absorb while exposed.
    exposure_budget: u64,
    /// Total consuming batches over the structure's lifetime.
    total_exposures: u64,
}

impl RobustConnectivity {
    /// Creates `instances` independent connectivity structures on `n`
    /// vertices, each allowed `exposure_budget` randomness-consuming
    /// batches while exposed.
    ///
    /// # Panics
    ///
    /// Panics if `instances == 0` or `exposure_budget == 0`.
    pub fn new(
        n: usize,
        instances: usize,
        exposure_budget: u64,
        cfg: ConnectivityConfig,
        seed: u64,
    ) -> Self {
        assert!(instances >= 1, "need at least one instance");
        assert!(exposure_budget >= 1, "exposure budget must be positive");
        RobustConnectivity {
            instances: (0..instances)
                .map(|i| Connectivity::new(n, cfg.clone(), seed.wrapping_add((i as u64) << 40)))
                .collect(),
            cursor: 0,
            current_exposures: 0,
            exposure_budget,
            total_exposures: 0,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.instances[0].vertex_count()
    }

    /// Number of provisioned instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Index of the currently exposed instance.
    pub fn exposed_instance(&self) -> usize {
        self.cursor
    }

    /// Randomness-consuming batches absorbed so far (lifetime total).
    pub fn exposures_spent(&self) -> u64 {
        self.total_exposures
    }

    /// Consuming batches still supported before
    /// [`RobustError::BudgetExhausted`].
    pub fn exposures_remaining(&self) -> u64 {
        let per = self.exposure_budget;
        let left_current = per - self.current_exposures;
        let left_later = (self.instances.len() - self.cursor - 1) as u64 * per;
        left_current + left_later
    }

    /// Whether the adaptivity budget is fully spent.
    pub fn is_exhausted(&self) -> bool {
        self.exposures_remaining() == 0
    }

    /// Memory footprint in words: `R×` the single-instance cost —
    /// the price of robustness, measured by experiment E14.
    pub fn words(&self) -> u64 {
        self.instances.iter().map(Connectivity::words).sum()
    }

    /// Cumulative `ℓ0`-sampler failures across all instances (every
    /// instance ingests every batch, so all of them can fail).
    pub fn sampler_failure_count(&self) -> u64 {
        self.instances
            .iter()
            .map(Connectivity::sampler_failure_count)
            .sum()
    }

    /// Applies a batch to **all** instances (they run in parallel on
    /// disjoint machine groups, so the round count matches a single
    /// instance; communication is `R×`).
    ///
    /// A batch *consumes exposure* iff it deletes an edge of the
    /// exposed instance's spanning forest — exactly then does the
    /// answer reveal fresh sketch samples (the replacement edges).
    /// When the current instance's budget is spent, the cursor
    /// silently advances to the next instance before processing.
    ///
    /// # Errors
    ///
    /// [`RobustError::BudgetExhausted`] — the batch is *not* applied
    /// — or any inner [`ConnectivityError`].
    pub fn apply_batch(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), RobustError> {
        let consuming = self.batch_consumes(batch);
        if consuming && self.current_exposures >= self.exposure_budget {
            if self.cursor + 1 < self.instances.len() {
                self.cursor += 1;
                self.current_exposures = 0;
            } else {
                return Err(RobustError::BudgetExhausted {
                    instances: self.instances.len(),
                    exposure_budget: self.exposure_budget,
                });
            }
        }
        // All instances ingest the batch; branches run in parallel.
        ctx.parallel_begin();
        for inst in &mut self.instances {
            ctx.parallel_branch();
            inst.apply_batch(batch, ctx)?;
        }
        ctx.parallel_end();
        if consuming {
            self.current_exposures += 1;
            self.total_exposures += 1;
        }
        Ok(())
    }

    fn batch_consumes(&self, batch: &Batch) -> bool {
        let forest: BTreeSet<Edge> = self.instances[self.cursor]
            .spanning_forest()
            .into_iter()
            .collect();
        batch.deletions().any(|e| forest.contains(&e))
    }

    /// Whether `u` and `v` are connected (answered by the exposed
    /// instance).
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.instances[self.cursor].connected(u, v)
    }

    /// Component id of `v` (exposed instance).
    pub fn component_of(&self, v: VertexId) -> VertexId {
        self.instances[self.cursor].component_of(v)
    }

    /// Component labelling (exposed instance).
    pub fn component_labels(&self) -> &[VertexId] {
        self.instances[self.cursor].component_labels()
    }

    /// Number of connected components (exposed instance).
    pub fn component_count(&self) -> usize {
        self.instances[self.cursor].component_count()
    }

    /// The exposed instance's maintained spanning forest.
    pub fn spanning_forest(&self) -> Vec<Edge> {
        self.instances[self.cursor].spanning_forest()
    }
}

// ----- snapshot persistence ---------------------------------------

impl mpc_snapshot::Persist for RobustConnectivity {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        self.instances.save(w);
        w.put_usize(self.cursor);
        w.put_u64(self.current_exposures);
        w.put_u64(self.exposure_budget);
        w.put_u64(self.total_exposures);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let instances = Vec::<Connectivity>::load(r)?;
        let cursor = r.take_usize()?;
        let current_exposures = r.take_u64()?;
        let exposure_budget = r.take_u64()?;
        let total_exposures = r.take_u64()?;
        if instances.is_empty() || exposure_budget == 0 {
            return Err(mpc_snapshot::SnapshotError::Corrupt(
                "robust-connectivity needs at least one instance and a positive budget".into(),
            ));
        }
        if cursor >= instances.len() || current_exposures > exposure_budget {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "robust-connectivity cursor {cursor}/{} or exposures {current_exposures}/{exposure_budget} out of range",
                instances.len()
            )));
        }
        Ok(RobustConnectivity {
            instances,
            cursor,
            current_exposures,
            exposure_budget,
            total_exposures,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::oracle;
    use mpc_sim::MpcConfig;

    fn ctx() -> MpcContext {
        MpcContext::new(MpcConfig::builder(32, 0.5).local_capacity(1 << 15).build())
    }

    fn rc(n: usize, instances: usize, budget: u64) -> RobustConnectivity {
        RobustConnectivity::new(n, instances, budget, ConnectivityConfig::default(), 5)
    }

    #[test]
    fn answers_match_oracle_through_switching() {
        let n = 16;
        let mut c = ctx();
        let mut r = rc(n, 3, 1);
        // Build a path, then repeatedly delete the tree edge the
        // exposed instance publishes — the adaptive pattern.
        r.apply_batch(
            &Batch::inserting((0..n as u32 - 1).map(|i| Edge::new(i, i + 1))),
            &mut c,
        )
        .unwrap();
        let mut live: Vec<Edge> = (0..n as u32 - 1).map(|i| Edge::new(i, i + 1)).collect();
        for _ in 0..3 {
            let target = r.spanning_forest()[0];
            r.apply_batch(&Batch::deleting([target]), &mut c).unwrap();
            live.retain(|e| *e != target);
            let labels = oracle::components(n, live.iter().copied());
            assert_eq!(r.component_labels(), &labels[..]);
        }
        assert_eq!(r.exposures_spent(), 3);
        // Budget 1 × 3 instances: the third consuming batch landed on
        // the last instance.
        assert_eq!(r.exposed_instance(), 2);
    }

    #[test]
    fn non_consuming_batches_are_free() {
        let mut c = ctx();
        let mut r = rc(8, 2, 1);
        r.apply_batch(
            &Batch::inserting([Edge::new(0, 1), Edge::new(0, 2)]),
            &mut c,
        )
        .unwrap();
        // Insertions never consume.
        r.apply_batch(&Batch::inserting([Edge::new(1, 2)]), &mut c)
            .unwrap();
        // Deleting a *non-tree* edge does not consume either.
        let forest: Vec<Edge> = r.spanning_forest();
        let non_tree = [Edge::new(0, 1), Edge::new(0, 2), Edge::new(1, 2)]
            .into_iter()
            .find(|e| !forest.contains(e))
            .expect("triangle has a non-tree edge");
        r.apply_batch(&Batch::deleting([non_tree]), &mut c).unwrap();
        assert_eq!(r.exposures_spent(), 0);
        assert_eq!(r.exposures_remaining(), 2);
    }

    #[test]
    fn budget_exhaustion_is_an_error_and_state_is_preserved() {
        let mut c = ctx();
        let mut r = rc(8, 2, 1);
        r.apply_batch(
            &Batch::inserting([Edge::new(0, 1), Edge::new(1, 2)]),
            &mut c,
        )
        .unwrap();
        // Two consuming deletions exhaust 2 instances × budget 1.
        let t1 = r.spanning_forest()[0];
        r.apply_batch(&Batch::deleting([t1]), &mut c).unwrap();
        let t2 = r.spanning_forest()[0];
        r.apply_batch(&Batch::deleting([t2]), &mut c).unwrap();
        assert!(r.is_exhausted());
        // Re-insert so another tree deletion is possible.
        r.apply_batch(&Batch::inserting([t1]), &mut c).unwrap();
        let t3 = r.spanning_forest()[0];
        let err = r.apply_batch(&Batch::deleting([t3]), &mut c).unwrap_err();
        assert!(matches!(
            err,
            RobustError::BudgetExhausted {
                instances: 2,
                exposure_budget: 1
            }
        ));
        // The refused batch was not applied anywhere.
        assert!(r.connected(t3.u(), t3.v()));
    }

    #[test]
    fn memory_is_r_times_single_instance() {
        let mut c = ctx();
        let mut single = Connectivity::new(16, ConnectivityConfig::default(), 5);
        let mut r = rc(16, 3, 2);
        let batch = Batch::inserting([Edge::new(0, 1), Edge::new(2, 3)]);
        single.apply_batch(&batch, &mut c).unwrap();
        r.apply_batch(&batch, &mut c).unwrap();
        assert_eq!(r.words(), 3 * single.words());
        assert_eq!(r.instance_count(), 3);
        assert_eq!(r.vertex_count(), 16);
    }

    #[test]
    fn instances_use_independent_randomness() {
        let r = rc(16, 2, 1);
        // Distinct seeds → the banks differ even before updates; we
        // can only observe this indirectly: both answer identically
        // on the empty graph.
        assert_eq!(r.component_count(), 16);
        assert_eq!(r.component_of(3), 3);
    }

    #[test]
    fn errors_display_and_source() {
        use std::error::Error;
        let b = RobustError::BudgetExhausted {
            instances: 2,
            exposure_budget: 3,
        };
        assert!(b.to_string().contains("exhausted"));
        assert!(b.source().is_none());
        let c = RobustError::Conn(ConnectivityError::InvalidBatch(Edge::new(0, 1)));
        assert!(c.to_string().contains("connectivity"));
        assert!(c.source().is_some());
    }
}
