//! The typed query vocabulary of the unified session surface.
//!
//! The paper's model serves *queries* against maintained sketch state
//! — connectivity, component counts, forest weight, matching size,
//! cut bounds — and treats answering as a protocol phase with a round
//! cost, not a host-side peek. [`QueryRequest`] names those questions
//! once for every maintainer; [`QueryResponse`] carries the answers.
//! A maintainer opts into the queries it can answer by overriding
//! [`Maintain::answer`](crate::Maintain::answer) and charging the
//! answer's rounds and communication through the [`MpcContext`](
//! mpc_sim::MpcContext) it is handed; everything else reports
//! [`MpcStreamError::Unsupported`](mpc_sim::MpcStreamError) without
//! touching the context.
//!
//! The design rule for charges: structures that *maintain* their
//! solution (the paper's contribution) answer in `O(1)` rounds —
//! routing the question to a shard and the answer back, or one
//! label/output sort for whole-solution reports (Section 1.1:
//! "reporting the connected components can be easily done by sorting
//! the labels"). Recompute-on-read structures (the baselines, the
//! dynamic k-connectivity peel) pay their genuine `Θ(log n)` or
//! `Θ(k log n)` recomputation rounds. The asymmetry is the point of
//! the comparison, and the query plane makes it measurable.

use mpc_graph::ids::{Edge, VertexId};
use mpc_sim::MpcStreamError;

/// The uniform "this maintainer cannot serve this query" error every
/// [`Maintain::answer`](crate::Maintain::answer) implementation
/// returns for queries outside its vocabulary — *before* charging
/// anything, so `Session::ask_all` skips non-supporters for free.
pub fn unsupported_query(maintainer: &str, query: &QueryRequest) -> MpcStreamError {
    MpcStreamError::Unsupported(format!("{maintainer} cannot answer {query}"))
}

/// Component count of a canonical labelling (every component labelled
/// by its minimum vertex id, the workspace-wide convention): the
/// number of self-labelled vertices. The shared helper behind every
/// label-based `ComponentCount` answer.
pub fn canonical_component_count(labels: &[VertexId]) -> u64 {
    labels
        .iter()
        .enumerate()
        .filter(|&(v, &c)| v as u32 == c)
        .count() as u64
}

/// A typed question against a maintainer's current state.
///
/// Not every maintainer answers every query; `Session::ask_all`
/// fans a request to every maintainer that supports it, and
/// `Session::ask` returns `Unsupported` for the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryRequest {
    /// Are `u` and `v` in the same connected component?
    Connected(VertexId, VertexId),
    /// The component id of a vertex.
    ComponentOf(VertexId),
    /// Number of connected components.
    ComponentCount,
    /// The maintained spanning forest (or certificate forest).
    SpanningForest,
    /// Total weight of the maintained (exact or approximate) minimum
    /// spanning forest.
    ForestWeight,
    /// Size of the maintained (or estimated) matching.
    MatchingSize,
    /// The edges of the maintained matching.
    MatchingEdges,
    /// The best lower bound on the global minimum cut (exact below
    /// the certificate resolution `k`).
    MinCutLowerBound,
    /// Is the graph bipartite?
    IsBipartite,
}

impl std::fmt::Display for QueryRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryRequest::Connected(u, v) => write!(f, "connected({u}, {v})"),
            QueryRequest::ComponentOf(v) => write!(f, "component_of({v})"),
            QueryRequest::ComponentCount => write!(f, "component_count"),
            QueryRequest::SpanningForest => write!(f, "spanning_forest"),
            QueryRequest::ForestWeight => write!(f, "forest_weight"),
            QueryRequest::MatchingSize => write!(f, "matching_size"),
            QueryRequest::MatchingEdges => write!(f, "matching_edges"),
            QueryRequest::MinCutLowerBound => write!(f, "min_cut_lower_bound"),
            QueryRequest::IsBipartite => write!(f, "is_bipartite"),
        }
    }
}

/// A typed answer to a [`QueryRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// A yes/no answer (`Connected`, `IsBipartite`).
    Bool(bool),
    /// A cardinality (`ComponentCount`, `MatchingSize`).
    Count(u64),
    /// A vertex id (`ComponentOf`).
    Vertex(VertexId),
    /// A (possibly approximate) weight (`ForestWeight`).
    Weight(f64),
    /// An edge list (`SpanningForest`, `MatchingEdges`).
    Edges(Vec<Edge>),
    /// A cut bound (`MinCutLowerBound`): every cut has at least
    /// `lower` edges, and `exact` says whether the bound is the true
    /// minimum (it is whenever the cut is below the certificate's
    /// resolution).
    MinCut {
        /// The lower bound.
        lower: u64,
        /// Whether the bound is exact.
        exact: bool,
    },
}

impl QueryResponse {
    /// The boolean answer, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            QueryResponse::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The cardinality answer, if this is one.
    pub fn as_count(&self) -> Option<u64> {
        match self {
            QueryResponse::Count(c) => Some(*c),
            _ => None,
        }
    }

    /// The vertex answer, if this is one.
    pub fn as_vertex(&self) -> Option<VertexId> {
        match self {
            QueryResponse::Vertex(v) => Some(*v),
            _ => None,
        }
    }

    /// The weight answer, if this is one.
    pub fn as_weight(&self) -> Option<f64> {
        match self {
            QueryResponse::Weight(w) => Some(*w),
            _ => None,
        }
    }

    /// The edge-list answer, if this is one.
    pub fn as_edges(&self) -> Option<&[Edge]> {
        match self {
            QueryResponse::Edges(es) => Some(es),
            _ => None,
        }
    }

    /// The cut-bound answer as `(lower, exact)`, if this is one.
    pub fn as_min_cut(&self) -> Option<(u64, bool)> {
        match self {
            QueryResponse::MinCut { lower, exact } => Some((*lower, *exact)),
            _ => None,
        }
    }
}

impl std::fmt::Display for QueryResponse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryResponse::Bool(b) => write!(f, "{b}"),
            QueryResponse::Count(c) => write!(f, "{c}"),
            QueryResponse::Vertex(v) => write!(f, "vertex {v}"),
            QueryResponse::Weight(w) => write!(f, "{w:.3}"),
            QueryResponse::Edges(es) => write!(f, "{} edges", es.len()),
            QueryResponse::MinCut { lower, exact } => {
                if *exact {
                    write!(f, "min cut = {lower}")
                } else {
                    write!(f, "min cut >= {lower}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_render_their_arguments() {
        assert_eq!(QueryRequest::Connected(0, 2).to_string(), "connected(0, 2)");
        assert_eq!(QueryRequest::ComponentOf(7).to_string(), "component_of(7)");
        for q in [
            QueryRequest::ComponentCount,
            QueryRequest::SpanningForest,
            QueryRequest::ForestWeight,
            QueryRequest::MatchingSize,
            QueryRequest::MatchingEdges,
            QueryRequest::MinCutLowerBound,
            QueryRequest::IsBipartite,
        ] {
            assert!(!q.to_string().is_empty());
        }
    }

    #[test]
    fn response_accessors_are_type_checked() {
        assert_eq!(QueryResponse::Bool(true).as_bool(), Some(true));
        assert_eq!(QueryResponse::Bool(true).as_count(), None);
        assert_eq!(QueryResponse::Count(4).as_count(), Some(4));
        assert_eq!(QueryResponse::Vertex(3).as_vertex(), Some(3));
        assert_eq!(QueryResponse::Weight(1.5).as_weight(), Some(1.5));
        let es = QueryResponse::Edges(vec![Edge::new(0, 1)]);
        assert_eq!(es.as_edges().map(<[Edge]>::len), Some(1));
        assert_eq!(es.as_min_cut(), None);
        let mc = QueryResponse::MinCut {
            lower: 2,
            exact: false,
        };
        assert_eq!(mc.as_min_cut(), Some((2, false)));
    }

    #[test]
    fn responses_display_compactly() {
        assert_eq!(QueryResponse::Bool(false).to_string(), "false");
        assert_eq!(QueryResponse::Count(9).to_string(), "9");
        assert_eq!(QueryResponse::Vertex(1).to_string(), "vertex 1");
        assert_eq!(QueryResponse::Weight(2.0).to_string(), "2.000");
        assert_eq!(
            QueryResponse::Edges(vec![Edge::new(0, 1)]).to_string(),
            "1 edges"
        );
        assert_eq!(
            QueryResponse::MinCut {
                lower: 2,
                exact: true
            }
            .to_string(),
            "min cut = 2"
        );
        assert_eq!(
            QueryResponse::MinCut {
                lower: 3,
                exact: false
            }
            .to_string(),
            "min cut >= 3"
        );
    }
}
