//! The batch-dynamic connectivity algorithm (paper Sections 4–6).

use mpc_etf::{DistEtf, TourId};
use mpc_graph::ids::{Edge, VertexId};
use mpc_graph::oracle::UnionFind;
use mpc_graph::update::{Batch, Update};
use mpc_sim::{MpcContext, MpcError};
use mpc_sketch::vertex::EdgeSample;
use mpc_sketch::SketchBank;
use std::collections::BTreeMap;

/// Tuning knobs for [`Connectivity`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConnectivityConfig {
    /// Independent sketch copies per vertex (`t` in the paper;
    /// `Θ(log n)`). `None` picks `⌈log2 n⌉ + 6`.
    pub sketch_copies: Option<usize>,
}

/// Errors surfaced by the connectivity algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectivityError {
    /// An MPC resource constraint was violated (e.g. the batch's
    /// auxiliary structures do not fit the coordinator machine).
    Mpc(MpcError),
    /// A deletion referenced an edge the sketches say is absent, or
    /// an insertion duplicated a live edge — the caller violated the
    /// dynamic-graph contract.
    InvalidBatch(Edge),
}

impl std::fmt::Display for ConnectivityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectivityError::Mpc(e) => write!(f, "mpc resource violation: {e}"),
            ConnectivityError::InvalidBatch(e) => write!(f, "invalid update for edge {e}"),
        }
    }
}

impl std::error::Error for ConnectivityError {}

impl From<MpcError> for ConnectivityError {
    fn from(e: MpcError) -> Self {
        ConnectivityError::Mpc(e)
    }
}

impl From<ConnectivityError> for mpc_sim::MpcStreamError {
    fn from(e: ConnectivityError) -> Self {
        match e {
            ConnectivityError::Mpc(inner) => mpc_sim::MpcStreamError::Capacity(inner),
            ConnectivityError::InvalidBatch(edge) => {
                mpc_sim::MpcStreamError::InvalidBatch(format!("invalid update for edge {edge}"))
            }
        }
    }
}

/// Batch-dynamic connectivity with an explicitly maintained spanning
/// forest (paper Theorem 6.7). See the [crate docs](crate) for the
/// protocol outline and an example.
#[derive(Debug, Clone)]
pub struct Connectivity {
    n: usize,
    comp: Vec<VertexId>,
    etf: DistEtf,
    bank: SketchBank,
    live_edges: usize,
    /// Cumulative `ℓ0`-sampler query failures (the `Fail` outcomes the
    /// retry levels absorb) — surfaced so the failure-probability
    /// envelope is observable instead of silently retried away.
    sampler_failures: u64,
}

impl Connectivity {
    /// Creates the structure for an empty graph on `n` vertices (the
    /// paper's starting state). All randomness derives from `seed`.
    pub fn new(n: usize, cfg: ConnectivityConfig, seed: u64) -> Self {
        let log_n = (usize::BITS - (n.max(2) - 1).leading_zeros()).max(1) as usize;
        let copies = cfg.sketch_copies.unwrap_or(log_n + 6);
        Connectivity {
            n,
            comp: (0..n as u32).collect(),
            etf: DistEtf::new(n),
            bank: SketchBank::new(n, copies, seed),
            live_edges: 0,
            sampler_failures: 0,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of live edges the sketches currently summarize.
    pub fn live_edge_count(&self) -> usize {
        self.live_edges
    }

    /// Cumulative `ℓ0`-sampler failures observed across all queries
    /// (each was absorbed by a retry at the next independent sketch
    /// copy, per Lemma 3.1's `O(log 1/δ)` amplification).
    pub fn sampler_failure_count(&self) -> u64 {
        self.sampler_failures
    }

    /// The component id of `v` (the smallest vertex id in `v`'s
    /// component). Constant query time: the labelling is maintained.
    pub fn component_of(&self, v: VertexId) -> VertexId {
        self.comp[v as usize]
    }

    /// Whether `u` and `v` are currently connected.
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.comp[u as usize] == self.comp[v as usize]
    }

    /// The full component labelling (index = vertex).
    pub fn component_labels(&self) -> &[VertexId] {
        &self.comp
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        self.comp
            .iter()
            .enumerate()
            .filter(|(v, &c)| *v as u32 == c)
            .count()
    }

    /// The maintained spanning forest. Constant query time
    /// (Theorem 1.1: the forest is maintained explicitly).
    pub fn spanning_forest(&self) -> Vec<Edge> {
        self.etf.forest_edges().collect()
    }

    /// Direct access to the Euler-tour forest (used by the MSF and
    /// experiment layers).
    pub fn etf(&self) -> &DistEtf {
        &self.etf
    }

    /// Total words of state (component ids + forest + sketches) —
    /// the quantity Theorem 1.1 bounds by `O(n log³ n)`.
    pub fn words(&self) -> u64 {
        self.n as u64 + self.etf.words() + self.bank.words()
    }

    /// Reports the per-machine sharded footprint into the context's
    /// memory accounting (vertex state on the vertex's shard, edge
    /// state on the smaller endpoint's shard).
    ///
    /// # Errors
    ///
    /// Propagates strict-mode capacity violations.
    pub fn account(&self, ctx: &mut MpcContext) -> Result<(), MpcError> {
        // Only the machines hosting vertex shards can hold state
        // (machine_of_vertex maps into 0..min(n, machines)).
        let machines = ctx.config().machines().min(self.n);
        let mut loads = vec![0u64; machines];
        let per_vertex_sketch = self.bank.words_per_vertex();
        for v in 0..self.n as u32 {
            let m = ctx.config().machine_of_vertex(v);
            loads[m] += 2; // component id + tour id
            if self.bank.is_materialized(v) {
                loads[m] += per_vertex_sketch;
            }
        }
        for e in self.etf.forest_edges() {
            loads[ctx.config().machine_of_vertex(e.u())] += 6;
        }
        for (m, w) in loads.into_iter().enumerate() {
            ctx.set_load(m, w)?;
        }
        Ok(())
    }

    /// Bootstraps the structure from an arbitrary starting graph —
    /// the paper's pre-computation phase (end of Section 1.1): run a
    /// known static algorithm once (`O(log n)` rounds, here AGM-style
    /// Borůvka over the freshly built sketches), install its spanning
    /// forest through `batch_join`s, and continue dynamically.
    ///
    /// # Errors
    ///
    /// Propagates resource violations.
    pub fn from_graph(
        n: usize,
        cfg: ConnectivityConfig,
        seed: u64,
        edges: impl IntoIterator<Item = Edge>,
        ctx: &mut MpcContext,
    ) -> Result<Self, ConnectivityError> {
        let mut conn = Connectivity::new(n, cfg, seed);
        // Load every edge into the sketches (one routing round: the
        // edges arrive distributed, each machine ingests its own).
        ctx.exchange(1);
        let mut count = 0usize;
        for e in edges {
            if (e.v() as usize) >= n {
                return Err(ConnectivityError::InvalidBatch(e));
            }
            conn.bank.insert_edge(e);
            count += 1;
        }
        conn.live_edges = count;
        // Static Borůvka: each level merges component sketches and
        // samples an outgoing edge per component — Θ(log n) levels,
        // each a converge-cast + a forest splice.
        let sketch_words = conn.bank.words_per_vertex() / conn.bank.copies().max(1) as u64;
        let mut uf = UnionFind::new(n);
        let mut scratch = conn.bank.new_scratch();
        for level in 0..conn.bank.copies() {
            if uf.component_count() == 1 {
                break;
            }
            ctx.converge_cast(n as u64, sketch_words);
            let mut groups: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
            for v in 0..n as u32 {
                groups.entry(uf.find(v)).or_default().push(v);
            }
            let mut found: Vec<Edge> = Vec::new();
            for (_, members) in groups {
                scratch.reset(level);
                // Host-parallel column merge (bit-identical; see
                // SketchArena::merge_into_stealing).
                if conn
                    .bank
                    .merge_copy_into_stealing(&members, &mut scratch, ctx.pool())
                    > 0
                {
                    match conn.bank.sample_merged(&scratch) {
                        EdgeSample::Edge(e) => found.push(e),
                        EdgeSample::Fail => conn.sampler_failures += 1,
                        EdgeSample::Empty => {}
                    }
                }
            }
            // Keep only edges that still merge distinct components.
            let mut accepted: Vec<Edge> = Vec::new();
            for e in found {
                if uf.union(e.u(), e.v()) {
                    accepted.push(e);
                }
            }
            if accepted.is_empty() {
                break;
            }
            // A level can accept up to n/2 edges — more than one
            // coordinator can hold at small s. Splice in machine-sized
            // chunks (each chunk's plan is ~6 words per edge).
            let chunk = (ctx.config().local_capacity() / 8).max(1) as usize;
            for part in accepted.chunks(chunk) {
                conn.etf.batch_join(part, ctx);
            }
        }
        // Component labels from the final union-find.
        let mut min_of: BTreeMap<u32, u32> = BTreeMap::new();
        for v in 0..n as u32 {
            let r = uf.find(v);
            min_of
                .entry(r)
                .and_modify(|m| *m = (*m).min(v))
                .or_insert(v);
        }
        for v in 0..n as u32 {
            conn.comp[v as usize] = min_of[&uf.find(v)];
        }
        ctx.sort(n as u64);
        conn.account(ctx)?;
        Ok(conn)
    }

    /// Counts components with the model's reporting mechanism
    /// (Section 1.1: "reporting the connected components can be
    /// easily done by sorting the labels"), charging the
    /// constant-round sort. Equals [`Connectivity::component_count`].
    pub fn query_component_count(&self, ctx: &mut MpcContext) -> usize {
        ctx.sort(self.n as u64);
        self.component_count()
    }

    /// Emits the spanning forest in the model's output placement
    /// (Section 1.2: the solution's edges are sorted onto the first
    /// `Õ(n/s)` machines) and charges the constant-round sort this
    /// costs. The returned edges equal
    /// [`Connectivity::spanning_forest`].
    pub fn query_spanning_forest(&self, ctx: &mut MpcContext) -> Vec<Edge> {
        let forest = self.spanning_forest();
        ctx.sort(2 * forest.len() as u64);
        forest
    }

    // ----- updates -------------------------------------------------

    /// Processes one update batch in `O(1/φ)` rounds (Theorem 6.7).
    /// Insertions are applied before deletions, after cancelling
    /// updates that negate each other inside the batch (the paper's
    /// WLOG in Section 1.2).
    ///
    /// # Errors
    ///
    /// * [`ConnectivityError::Mpc`] if a batch structure exceeds the
    ///   coordinator capacity (batch too large for `s`).
    /// * [`ConnectivityError::InvalidBatch`] if the batch violates
    ///   the simple-graph contract.
    pub fn apply_batch(
        &mut self,
        batch: &Batch,
        ctx: &mut MpcContext,
    ) -> Result<(), ConnectivityError> {
        let (ins, del) = self.normalize(batch)?;
        if !ins.is_empty() {
            self.insert_edges(&ins, ctx)?;
        }
        if !del.is_empty() {
            self.delete_edges(&del, ctx)?;
        }
        self.account(ctx)?;
        Ok(())
    }

    /// Processes a single update (the Section 4/5 streaming
    /// algorithm is the batch algorithm at `k = 1`).
    ///
    /// # Errors
    ///
    /// As [`Connectivity::apply_batch`].
    pub fn apply_update(
        &mut self,
        update: Update,
        ctx: &mut MpcContext,
    ) -> Result<(), ConnectivityError> {
        self.apply_batch(&Batch::from_updates(vec![update]), ctx)
    }

    /// Computes the net effect of a batch: an edge toggled an even
    /// number of times is a no-op; odd, its final operation wins.
    fn normalize(&self, batch: &Batch) -> Result<(Vec<Edge>, Vec<Edge>), ConnectivityError> {
        let mut last: BTreeMap<Edge, (Update, usize)> = BTreeMap::new();
        let mut count: BTreeMap<Edge, usize> = BTreeMap::new();
        for (i, u) in batch.iter().enumerate() {
            let e = u.edge();
            if (e.v() as usize) >= self.n {
                return Err(ConnectivityError::InvalidBatch(e));
            }
            last.insert(e, (u, i));
            *count.entry(e).or_insert(0) += 1;
        }
        let mut ins = Vec::new();
        let mut del = Vec::new();
        let mut ordered: Vec<(Edge, (Update, usize))> = last.into_iter().collect();
        ordered.sort_by_key(|(_, (_, i))| *i);
        for (e, (u, _)) in ordered {
            if count[&e].is_multiple_of(2) {
                continue; // cancelled inside the batch
            }
            match u {
                Update::Insert(_) => ins.push(e),
                Update::Delete(_) => del.push(e),
            }
        }
        Ok((ins, del))
    }

    /// Section 6.1: batch insertions.
    fn insert_edges(
        &mut self,
        edges: &[Edge],
        ctx: &mut MpcContext,
    ) -> Result<(), ConnectivityError> {
        let k = edges.len() as u64;
        // Route each update to its endpoints' shard machines (one
        // point-to-point round) plus O(1) control words on the
        // broadcast tree; every machine updates its own sketches.
        ctx.exchange(4 * k);
        ctx.broadcast(2);
        for &e in edges {
            if self.etf.contains_edge(e) {
                return Err(ConnectivityError::InvalidBatch(e));
            }
            self.bank.insert_edge(e);
        }
        self.live_edges += edges.len();
        // Coordinator builds the auxiliary graph H over component ids
        // (Claim 6.1: it has O(k) nodes, fits one machine).
        ctx.gather(2 * k)?;
        let mut index: BTreeMap<VertexId, u32> = BTreeMap::new();
        for &e in edges {
            for c in [self.comp[e.u() as usize], self.comp[e.v() as usize]] {
                let next = index.len() as u32;
                index.entry(c).or_insert(next);
            }
        }
        let mut uf = UnionFind::new(index.len());
        let mut f_h: Vec<Edge> = Vec::new();
        for &e in edges {
            let a = index[&self.comp[e.u() as usize]];
            let b = index[&self.comp[e.v() as usize]];
            if a != b && uf.union(a, b) {
                f_h.push(e);
            }
        }
        // Splice the Euler tours along F_H.
        self.etf.batch_join(&f_h, ctx);
        // Component relabelling: each merged group takes the minimum
        // id; broadcast the O(k)-entry map, applied locally.
        let mut group_min: BTreeMap<u32, VertexId> = BTreeMap::new();
        for (&c, &i) in &index {
            let root = uf.find(i);
            group_min
                .entry(root)
                .and_modify(|m| *m = (*m).min(c))
                .or_insert(c);
        }
        let mut relabel: BTreeMap<VertexId, VertexId> = BTreeMap::new();
        for (&c, &i) in &index {
            let target = group_min[&uf.find(i)];
            if target != c {
                relabel.insert(c, target);
            }
        }
        if !relabel.is_empty() {
            ctx.sort(2 * relabel.len() as u64);
            ctx.broadcast(2);
            // Every vertex whose label changes sits in a tour that
            // gained an F_H edge, so only those tours' members are
            // visited — O(affected) work, not O(n).
            let mut merged_tours: Vec<TourId> =
                f_h.iter().map(|e| self.etf.tour_of(e.u())).collect();
            merged_tours.sort_unstable();
            merged_tours.dedup();
            for t in merged_tours {
                for &w in self.etf.tour_members(t) {
                    let cv = &mut self.comp[w as usize];
                    if let Some(&nc) = relabel.get(cv) {
                        *cv = nc;
                    }
                }
            }
        }
        Ok(())
    }

    /// Sections 6.3: batch deletions.
    fn delete_edges(
        &mut self,
        edges: &[Edge],
        ctx: &mut MpcContext,
    ) -> Result<(), ConnectivityError> {
        let k = edges.len() as u64;
        ctx.exchange(4 * k);
        ctx.broadcast(2);
        for &e in edges {
            self.bank.delete_edge(e);
        }
        self.live_edges = self
            .live_edges
            .checked_sub(edges.len())
            .ok_or(ConnectivityError::InvalidBatch(edges[0]))?;
        // Non-tree deletions need nothing further.
        let tree: Vec<Edge> = edges
            .iter()
            .copied()
            .filter(|&e| self.etf.contains_edge(e))
            .collect();
        if tree.is_empty() {
            return Ok(());
        }
        // Split the tours along the deleted tree edges, capturing
        // each piece's membership before the replacement join renames
        // tours.
        let pieces = self.etf.batch_split(&tree, ctx);
        let piece_members: Vec<Vec<VertexId>> = pieces
            .iter()
            .map(|&p| self.etf.tour_members(p).to_vec())
            .collect();
        // Replacement-edge search (Borůvka over the pieces).
        let replacements = self.find_replacements(&pieces, ctx)?;
        self.etf.batch_join(&replacements, ctx);
        // Recompute component ids for everything touched: group the
        // pieces by their final tour and take each group's minimum
        // member id.
        let mut final_groups: BTreeMap<TourId, Vec<VertexId>> = BTreeMap::new();
        for members in piece_members {
            // A pieceless group has nothing to relabel; skipping it
            // keeps the hot path free of aborts.
            let Some(&rep) = members.first() else {
                continue;
            };
            final_groups
                .entry(self.etf.tour_of(rep))
                .or_default()
                .extend(members);
        }
        let mut relabel_count = 0u64;
        for (_, members) in final_groups {
            // Groups are seeded from nonempty piece lists, but an
            // empty one relabels nothing — no reason to abort.
            let Some(&new_c) = members.iter().min() else {
                continue;
            };
            for &v in &members {
                self.comp[v as usize] = new_c;
            }
            relabel_count += 1;
        }
        ctx.sort(2 * relabel_count);
        ctx.broadcast(2);
        Ok(())
    }

    /// Borůvka over the split pieces using one fresh sketch copy per
    /// level (Section 6.3, "Constructing F_H").
    fn find_replacements(
        &mut self,
        pieces: &[TourId],
        ctx: &mut MpcContext,
    ) -> Result<Vec<Edge>, ConnectivityError> {
        let piece_index: BTreeMap<TourId, u32> = pieces
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u32))
            .collect();
        let members: Vec<Vec<VertexId>> = pieces
            .iter()
            .map(|&t| self.etf.tour_members(t).to_vec())
            .collect();
        let member_total: u64 = members.iter().map(|m| m.len() as u64).sum();
        let sketch_words = self.bank.words_per_vertex() / self.bank.copies().max(1) as u64;
        let mut uf = UnionFind::new(pieces.len());
        let mut replacements: Vec<Edge> = Vec::new();
        let mut exhausted: Vec<bool> = vec![false; pieces.len()];
        // One converge-cast merges every piece's sketches (all `t`
        // copies) in parallel, and the merged sketches — `O(k·log³n)`
        // words — are collected at the coordinator, which then runs
        // the whole Borůvka cascade *locally* (paper Lemma 6.5: at
        // the paper's parameterization, `k ≤ n^φ/log³n`, everything
        // fits in one machine, so the cascade costs no extra rounds).
        // The t copies merge along parallel aggregation trees (the
        // paper's regime has s >> log^3 n, so one machine holds many
        // sketches; the depth is governed by a single copy's size).
        ctx.converge_cast(member_total.max(1), sketch_words);
        ctx.exchange(pieces.len() as u64 * sketch_words * self.bank.copies() as u64);
        // One reusable merge accumulator serves every supernode of
        // every level — the cascade allocates nothing per component.
        let mut scratch = self.bank.new_scratch();
        for level in 0..self.bank.copies() {
            // Group pieces by their current supernode.
            let mut groups: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
            for i in 0..pieces.len() as u32 {
                groups.entry(uf.find(i)).or_default().push(i);
            }
            if groups.len() <= 1 {
                break;
            }
            let mut progress = false;
            let mut unions: Vec<Edge> = Vec::new();
            for (root, group) in &groups {
                if exhausted[*root as usize] {
                    continue;
                }
                // Supernode sketch = Σ member-piece columns at this
                // level, accumulated straight into the scratch.
                scratch.reset(level);
                let mut absorbed = 0usize;
                for &pi in group {
                    // Host-parallel column merge (bit-identical; see
                    // SketchArena::merge_into_stealing).
                    absorbed += self.bank.merge_copy_into_stealing(
                        &members[pi as usize],
                        &mut scratch,
                        ctx.pool(),
                    );
                }
                let outcome = (absorbed > 0).then(|| self.bank.sample_merged(&scratch));
                match outcome {
                    None | Some(EdgeSample::Empty) => {
                        // No outgoing edge: this supernode is a
                        // complete component.
                        exhausted[*root as usize] = true;
                    }
                    Some(EdgeSample::Fail) => {
                        // Retry at the next level with fresh
                        // randomness.
                        self.sampler_failures += 1;
                    }
                    Some(EdgeSample::Edge(e)) => {
                        unions.push(e);
                    }
                }
            }
            for e in unions {
                let ta = self.etf.tour_of(e.u());
                let tb = self.etf.tour_of(e.v());
                let (Some(&ia), Some(&ib)) = (piece_index.get(&ta), piece_index.get(&tb)) else {
                    debug_assert!(false, "sampled edge {e} leaves the affected component");
                    continue;
                };
                if uf.union(ia, ib) {
                    // Exhaustion marks belong to supernodes; a merged
                    // supernode must be re-probed.
                    let r = uf.find(ia);
                    exhausted[r as usize] = false;
                    replacements.push(e);
                    progress = true;
                }
            }
            if !progress && groups.keys().all(|&r| exhausted[r as usize]) {
                break;
            }
        }
        // Distribute the replacement set once (the subsequent
        // batch_join charges its own splice rounds).
        ctx.sort(2 * replacements.len() as u64 + 1);
        ctx.broadcast(2);
        Ok(replacements)
    }
}

// ----- snapshot persistence ---------------------------------------

impl mpc_snapshot::Persist for Connectivity {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        self.comp.save(w);
        self.etf.save(w);
        self.bank.save(w);
        w.put_usize(self.live_edges);
        w.put_u64(self.sampler_failures);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let n = r.take_usize()?;
        let comp = Vec::<VertexId>::load(r)?;
        let etf = DistEtf::load(r)?;
        let bank = SketchBank::load(r)?;
        let live_edges = r.take_usize()?;
        let sampler_failures = r.take_u64()?;
        if comp.len() != n {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "connectivity label table covers {} of {n} vertices",
                comp.len()
            )));
        }
        Ok(Connectivity {
            n,
            comp,
            etf,
            bank,
            live_edges,
            sampler_failures,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_etf::tour::validate;
    use mpc_graph::gen;
    use mpc_graph::oracle;
    use mpc_sim::MpcConfig;
    use std::collections::BTreeSet;

    fn ctx_for(n: usize) -> MpcContext {
        MpcContext::new(MpcConfig::builder(n, 0.5).local_capacity(1 << 16).build())
    }

    fn check_against_oracle(conn: &Connectivity, live: &[Edge], n: usize) {
        let labels = oracle::components(n, live.iter().copied());
        assert_eq!(
            conn.component_labels(),
            &labels[..],
            "component labels must match union-find oracle"
        );
        // Spanning forest sanity: forest over live edges, spans.
        let forest = conn.spanning_forest();
        let mut uf = UnionFind::new(n);
        for e in &forest {
            assert!(live.contains(e), "forest edge {e} not live");
            assert!(uf.union(e.u(), e.v()), "forest has a cycle at {e}");
        }
        assert_eq!(
            uf.component_count(),
            oracle::component_count(n, live.iter().copied()),
            "forest spans all components"
        );
        validate(conn.etf()).expect("tours valid");
    }

    #[test]
    fn single_insertions_connect() {
        let n = 16;
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 1);
        let mut live = Vec::new();
        for i in 0..n as u32 - 1 {
            let e = Edge::new(i, i + 1);
            conn.apply_update(Update::Insert(e), &mut ctx).unwrap();
            live.push(e);
            check_against_oracle(&conn, &live, n);
        }
        assert_eq!(conn.component_count(), 1);
    }

    #[test]
    fn batch_insertions_random() {
        let n = 64;
        let stream = gen::random_insert_stream(n, 6, 12, 7);
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 2);
        let snaps = stream.replay();
        for (batch, snap) in stream.batches.iter().zip(&snaps) {
            conn.apply_batch(batch, &mut ctx).unwrap();
            let live: Vec<Edge> = snap.edges().collect();
            check_against_oracle(&conn, &live, n);
        }
    }

    #[test]
    fn nontree_deletion_is_trivial() {
        let n = 8;
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 3);
        // Triangle: one edge is non-tree.
        let tri = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)];
        conn.apply_batch(&Batch::inserting(tri), &mut ctx).unwrap();
        let forest = conn.spanning_forest();
        let nontree = tri
            .iter()
            .copied()
            .find(|e| !forest.contains(e))
            .expect("triangle has a non-tree edge");
        conn.apply_update(Update::Delete(nontree), &mut ctx)
            .unwrap();
        assert!(conn.connected(0, 2));
        assert_eq!(conn.component_count(), n - 2);
    }

    #[test]
    fn tree_deletion_with_replacement() {
        let n = 8;
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 4);
        let tri = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)];
        conn.apply_batch(&Batch::inserting(tri), &mut ctx).unwrap();
        let forest = conn.spanning_forest();
        let tree_edge = forest[0];
        conn.apply_update(Update::Delete(tree_edge), &mut ctx)
            .unwrap();
        // Still connected via the replacement.
        assert!(conn.connected(0, 1));
        assert!(conn.connected(1, 2));
        let live: Vec<Edge> = tri.iter().copied().filter(|&e| e != tree_edge).collect();
        check_against_oracle(&conn, &live, n);
    }

    #[test]
    fn tree_deletion_without_replacement_splits() {
        let n = 8;
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 5);
        let path = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)];
        conn.apply_batch(&Batch::inserting(path), &mut ctx).unwrap();
        conn.apply_update(Update::Delete(Edge::new(1, 2)), &mut ctx)
            .unwrap();
        assert!(conn.connected(0, 1));
        assert!(conn.connected(2, 3));
        assert!(!conn.connected(1, 2));
        assert_eq!(conn.component_of(2), 2);
        let live = [Edge::new(0, 1), Edge::new(2, 3)];
        check_against_oracle(&conn, &live, n);
    }

    #[test]
    fn mixed_random_stream_matches_oracle() {
        let n = 48;
        let stream = gen::random_mixed_stream(n, 10, 8, 0.65, 99);
        let snaps = stream.replay();
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 6);
        for (bi, (batch, snap)) in stream.batches.iter().zip(&snaps).enumerate() {
            conn.apply_batch(batch, &mut ctx)
                .unwrap_or_else(|e| panic!("batch {bi}: {e}"));
            let live: Vec<Edge> = snap.edges().collect();
            check_against_oracle(&conn, &live, n);
        }
    }

    #[test]
    fn merge_split_churn_matches_oracle() {
        let stream = gen::merge_split_stream(4, 4, 3, 24, 11);
        let n = stream.n;
        let snaps = stream.replay();
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 7);
        for (batch, snap) in stream.batches.iter().zip(&snaps) {
            conn.apply_batch(batch, &mut ctx).unwrap();
            let live: Vec<Edge> = snap.edges().collect();
            check_against_oracle(&conn, &live, n);
        }
    }

    #[test]
    fn cancelling_updates_are_noop() {
        let n = 8;
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 8);
        let e = Edge::new(0, 1);
        conn.apply_batch(
            &Batch::from_updates(vec![Update::Insert(e), Update::Delete(e)]),
            &mut ctx,
        )
        .unwrap();
        assert!(!conn.connected(0, 1));
        assert_eq!(conn.live_edge_count(), 0);
        // Delete-then-reinsert inside one batch is also a net no-op.
        conn.apply_update(Update::Insert(e), &mut ctx).unwrap();
        conn.apply_batch(
            &Batch::from_updates(vec![Update::Delete(e), Update::Insert(e)]),
            &mut ctx,
        )
        .unwrap();
        assert!(conn.connected(0, 1));
        assert_eq!(conn.live_edge_count(), 1);
    }

    #[test]
    fn rounds_per_batch_are_bounded() {
        let n = 256;
        let stream = gen::random_mixed_stream(n, 8, 16, 0.6, 5);
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 9);
        let budget = (conn.bank.copies() as u64 + 8) * ctx.config().round_budget_per_primitive();
        for (bi, batch) in stream.batches.iter().enumerate() {
            ctx.begin_phase("batch");
            conn.apply_batch(batch, &mut ctx).unwrap();
            let r = ctx.end_phase();
            assert!(
                r.rounds <= budget,
                "batch {bi} used {} rounds > {budget}",
                r.rounds
            );
        }
    }

    #[test]
    fn memory_is_tracked() {
        let n = 64;
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 10);
        conn.apply_batch(
            &Batch::inserting((0..10u32).map(|i| Edge::new(i, i + 1))),
            &mut ctx,
        )
        .unwrap();
        assert!(ctx.stats().peak_total_words > 0);
        assert!(conn.words() > 0);
    }

    #[test]
    fn invalid_vertex_rejected() {
        let n = 4;
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 11);
        let err = conn
            .apply_update(Update::Insert(Edge::new(0, 7)), &mut ctx)
            .unwrap_err();
        assert!(matches!(err, ConnectivityError::InvalidBatch(_)));
    }

    #[test]
    fn adversarial_delete_reinsert_cycles_on_tree_edges() {
        // Repeatedly delete exactly the current spanning forest's
        // edges and re-insert them next batch — the worst case for
        // sketch freshness (every batch exercises the replacement
        // search and the tours churn completely).
        let n = 24;
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 13);
        // Ladder: replacements always exist.
        let half = n as u32 / 2;
        let mut edges: Vec<Edge> = Vec::new();
        for i in 0..half - 1 {
            edges.push(Edge::new(i, i + 1));
            edges.push(Edge::new(half + i, half + i + 1));
        }
        for i in 0..half {
            edges.push(Edge::new(i, half + i));
        }
        conn.apply_batch(&Batch::inserting(edges.clone()), &mut ctx)
            .unwrap();
        let mut live: BTreeSet<Edge> = edges.iter().copied().collect();
        for round in 0..6 {
            let forest = conn.spanning_forest();
            let victims: Vec<Edge> = forest.into_iter().take(8).collect();
            conn.apply_batch(&Batch::deleting(victims.iter().copied()), &mut ctx)
                .unwrap();
            for e in &victims {
                live.remove(e);
            }
            let snapshot: Vec<Edge> = live.iter().copied().collect();
            check_against_oracle(&conn, &snapshot, n);
            conn.apply_batch(&Batch::inserting(victims.iter().copied()), &mut ctx)
                .unwrap();
            live.extend(victims);
            let snapshot: Vec<Edge> = live.iter().copied().collect();
            check_against_oracle(&conn, &snapshot, n);
            let _ = round;
        }
    }

    #[test]
    fn charged_component_count_matches_free_one() {
        let n = 16;
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 14);
        conn.apply_batch(
            &Batch::inserting([Edge::new(0, 1), Edge::new(3, 4)]),
            &mut ctx,
        )
        .unwrap();
        ctx.begin_phase("count");
        let count = conn.query_component_count(&mut ctx);
        let r = ctx.end_phase();
        assert_eq!(count, conn.component_count());
        assert!(r.rounds >= 1);
    }

    #[test]
    fn from_graph_bootstrap_matches_oracle() {
        let n = 64;
        let stream = gen::random_insert_stream(n, 1, 120, 21);
        let snap = stream.replay().pop().expect("nonempty");
        let edges: Vec<Edge> = snap.edges().collect();
        let mut ctx = ctx_for(n);
        ctx.begin_phase("bootstrap");
        let mut conn = Connectivity::from_graph(
            n,
            ConnectivityConfig::default(),
            31,
            edges.iter().copied(),
            &mut ctx,
        )
        .expect("bootstrap");
        let boot = ctx.end_phase();
        assert!(boot.rounds >= 1, "bootstrap costs rounds");
        check_against_oracle(&conn, &edges, n);
        assert_eq!(conn.live_edge_count(), edges.len());
        // The structure is fully dynamic afterwards.
        let forest = conn.spanning_forest();
        conn.apply_update(Update::Delete(forest[0]), &mut ctx)
            .expect("dynamic after bootstrap");
        let live: Vec<Edge> = edges.into_iter().filter(|&e| e != forest[0]).collect();
        check_against_oracle(&conn, &live, n);
    }

    #[test]
    fn query_output_placement_charges_a_sort() {
        let n = 16;
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 2);
        conn.apply_batch(
            &Batch::inserting((0..8u32).map(|i| Edge::new(i, i + 1))),
            &mut ctx,
        )
        .unwrap();
        ctx.begin_phase("query");
        let forest = conn.query_spanning_forest(&mut ctx);
        let r = ctx.end_phase();
        assert_eq!(forest.len(), 8);
        assert!(r.rounds >= 1 && r.rounds <= ctx.config().round_budget_per_primitive() + 3);
    }

    #[test]
    fn duplicate_tree_insert_rejected() {
        let n = 4;
        let mut ctx = ctx_for(n);
        let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 12);
        let e = Edge::new(0, 1);
        conn.apply_update(Update::Insert(e), &mut ctx).unwrap();
        let err = conn.apply_update(Update::Insert(e), &mut ctx).unwrap_err();
        assert!(matches!(err, ConnectivityError::InvalidBatch(_)));
    }
}
