//! Hashing substrate for the `mpc-stream` workspace.
//!
//! Sketch-based streaming algorithms (the `ℓ0`-samplers of
//! \[CJ19\] used throughout the paper, Lemma 3.1) need three primitives,
//! all provided here:
//!
//! * [`field`] — arithmetic in the Mersenne-prime field
//!   `GF(2^61 - 1)`, the standard modulus for streaming hash functions
//!   because reduction is two adds and a shift.
//! * [`kwise`] — *k*-wise independent polynomial hash families over
//!   that field. Pairwise independence is what the `ℓ0`-sampler's
//!   level assignment needs; the matching testers of Section 8 use
//!   four-wise families.
//! * [`fingerprint`] — linear polynomial fingerprints used by the
//!   one-sparse recovery test inside each sampler level. Linearity is
//!   what makes the sketches mergeable (Remark 3.2 of the paper).
//!
//! # Examples
//!
//! ```
//! use mpc_hashing::kwise::KWiseHash;
//!
//! let h = KWiseHash::from_seed(2, 42); // a pairwise-independent function
//! let x = h.eval(17);
//! assert_eq!(x, h.eval(17)); // deterministic
//! ```

#![forbid(unsafe_code)]

pub mod field;
pub mod fingerprint;
pub mod kwise;

pub use field::M61;
pub use fingerprint::Fingerprint;
pub use kwise::KWiseHash;
