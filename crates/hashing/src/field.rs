//! Arithmetic in the Mersenne-prime field `GF(p)` with `p = 2^61 - 1`.
//!
//! All sketch fingerprints and hash families in this workspace work
//! over this field. Elements are stored as `u64` values in `[0, p)`.

/// The Mersenne prime `2^61 - 1`.
pub const P: u64 = (1u64 << 61) - 1;

/// A field element of `GF(2^61 - 1)`.
///
/// The wrapped value is always kept reduced into `[0, P)`.
///
/// # Examples
///
/// ```
/// use mpc_hashing::field::M61;
///
/// let a = M61::new(5);
/// let b = M61::new(7);
/// assert_eq!((a * b).value(), 35);
/// assert_eq!((a - b) + b, a);
/// ```
/// The `repr(transparent)` layout is a documented guarantee: an
/// `M61` is exactly one `u64` holding the canonical representative,
/// which the sketch crate's vectorized kernels rely on to load slices
/// of field elements as raw 64-bit lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct M61(u64);

impl M61 {
    /// The additive identity.
    pub const ZERO: M61 = M61(0);
    /// The multiplicative identity.
    pub const ONE: M61 = M61(1);

    /// Creates a field element, reducing the input modulo `P`.
    #[inline]
    pub fn new(v: u64) -> Self {
        M61(reduce_once(v % (2 * P)))
    }

    /// Creates a field element from a signed integer (negative values
    /// map to the additive inverse of their magnitude).
    #[inline]
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            M61::new(v as u64)
        } else {
            -M61::new(v.unsigned_abs())
        }
    }

    /// Creates a field element from a value that is **already
    /// reduced** into `[0, P)` — the fast constructor for kernel code
    /// whose arithmetic maintains the reduction invariant itself
    /// (e.g. a conditional-subtract modular add). Debug builds verify
    /// the claim; release builds trust it, so callers must only pass
    /// values below [`P`].
    #[inline]
    pub fn from_reduced(v: u64) -> Self {
        debug_assert!(v < P, "from_reduced got unreduced value {v}");
        M61(v)
    }

    /// Returns the canonical representative in `[0, P)`.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Raises `self` to the power `e` by square-and-multiply.
    pub fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = M61::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            e >>= 1;
        }
        acc
    }

    /// Returns the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero (zero has no inverse).
    pub fn inverse(self) -> Self {
        assert!(self.0 != 0, "zero has no multiplicative inverse");
        // Fermat: a^(p-2) = a^{-1} mod p.
        self.pow(P - 2)
    }

    /// Whether this is the additive identity.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl mpc_snapshot::Persist for M61 {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_u64(self.0);
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let v = r.take_u64()?;
        if v >= P {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "field element {v} is not reduced modulo 2^61 - 1"
            )));
        }
        Ok(M61(v))
    }
}

/// One conditional subtraction, valid for inputs `< 2P`.
#[inline]
fn reduce_once(v: u64) -> u64 {
    if v >= P {
        v - P
    } else {
        v
    }
}

/// Reduces a 128-bit product modulo the Mersenne prime using the
/// identity `2^61 ≡ 1 (mod p)`.
#[inline]
fn reduce128(v: u128) -> u64 {
    let lo = (v as u64) & P;
    let hi = (v >> 61) as u64;
    reduce_once(reduce_once(lo + (hi & P)) + (hi >> 61))
}

impl std::ops::Add for M61 {
    type Output = M61;
    #[inline]
    fn add(self, rhs: M61) -> M61 {
        M61(reduce_once(self.0 + rhs.0))
    }
}

impl std::ops::AddAssign for M61 {
    #[inline]
    fn add_assign(&mut self, rhs: M61) {
        *self = *self + rhs;
    }
}

impl std::ops::Sub for M61 {
    type Output = M61;
    #[inline]
    fn sub(self, rhs: M61) -> M61 {
        M61(reduce_once(self.0 + P - rhs.0))
    }
}

impl std::ops::SubAssign for M61 {
    #[inline]
    fn sub_assign(&mut self, rhs: M61) {
        *self = *self - rhs;
    }
}

impl std::ops::Neg for M61 {
    type Output = M61;
    #[inline]
    fn neg(self) -> M61 {
        M61(reduce_once(P - self.0))
    }
}

impl std::ops::Mul for M61 {
    type Output = M61;
    #[inline]
    fn mul(self, rhs: M61) -> M61 {
        M61(reduce128(self.0 as u128 * rhs.0 as u128))
    }
}

impl std::ops::MulAssign for M61 {
    #[inline]
    fn mul_assign(&mut self, rhs: M61) {
        *self = *self * rhs;
    }
}

impl std::fmt::Display for M61 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for M61 {
    fn from(v: u64) -> Self {
        M61::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_of_large_inputs() {
        assert_eq!(M61::new(P).value(), 0);
        assert_eq!(M61::new(P + 1).value(), 1);
        assert_eq!(M61::new(2 * P - 1).value(), P - 1);
        assert_eq!(M61::new(u64::MAX).value(), u64::MAX % P);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = M61::new(123_456_789);
        let b = M61::new(P - 5);
        assert_eq!((a + b) - b, a);
        assert_eq!((a - b) + b, a);
        assert_eq!(a + (-a), M61::ZERO);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let cases = [
            (0u64, 0u64),
            (1, P - 1),
            (P - 1, P - 1),
            (1 << 60, 1 << 60),
            (987_654_321, 123_456_789),
        ];
        for (x, y) in cases {
            let expect = ((x as u128 * y as u128) % P as u128) as u64;
            assert_eq!((M61::new(x) * M61::new(y)).value(), expect, "{x} * {y}");
        }
    }

    #[test]
    fn pow_small_cases() {
        let a = M61::new(3);
        assert_eq!(a.pow(0), M61::ONE);
        assert_eq!(a.pow(1), a);
        assert_eq!(a.pow(4).value(), 81);
        // Fermat's little theorem.
        assert_eq!(a.pow(P - 1), M61::ONE);
    }

    #[test]
    fn inverse_is_inverse() {
        for v in [1u64, 2, 3, 7, P - 1, 1 << 33] {
            let a = M61::new(v);
            assert_eq!(a * a.inverse(), M61::ONE, "v = {v}");
        }
    }

    #[test]
    #[should_panic(expected = "zero has no multiplicative inverse")]
    fn inverse_of_zero_panics() {
        let _ = M61::ZERO.inverse();
    }

    #[test]
    fn from_i64_negative() {
        let a = M61::from_i64(-3);
        assert_eq!(a + M61::new(3), M61::ZERO);
        assert_eq!(M61::from_i64(5), M61::new(5));
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert_eq!(format!("{}", M61::new(7)), "7");
        assert!(!format!("{:?}", M61::ZERO).is_empty());
    }
}
