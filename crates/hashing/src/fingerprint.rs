//! Linear polynomial fingerprints.
//!
//! A fingerprint of a vector `X` is `F(X) = Σ_i X_i · z^i` over
//! `GF(2^61 - 1)` for a random evaluation point `z`. Two properties
//! matter for the one-sparse recovery test inside every `ℓ0`-sampler
//! level (paper Lemma 3.1):
//!
//! * **Linearity** — `F(X + Y) = F(X) + F(Y)`, so sketches merge by
//!   field addition (paper Remark 3.2).
//! * **Soundness** — a nonzero vector of support `≤ d` fingerprints to
//!   zero with probability at most `d / (2^61 - 1)` over the choice of
//!   `z` (Schwartz–Zippel).
//!
//! The family randomness (the evaluation point and its derived power
//! tables) lives in a [`FingerprintFamily`], seeded **once** and
//! shared by every accumulator of the family — the columnar sketch
//! arena holds one family per sketch copy and stores only the bare
//! field accumulators per cell.

use crate::field::{M61, P};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Number of radix-256 digit tables covering a full `u64` exponent.
const RADIX_BLOCKS: usize = 8;

/// The shared randomness of a fingerprint family: the evaluation
/// point `z` and precomputed power tables.
///
/// `z^index` is assembled from radix-256 digit tables
/// (`pow[b][d] = z^(d · 256^b)`), so a term costs one multiplication
/// per **nonzero byte** of the index — at most 8, and 3 for the
/// `n² ≤ 2^48`-sized edge spaces with `n ≤ 2^12` the graph sketches
/// use. Bounded constructors build tables only for the bytes their
/// exponent range can reach, so the many small per-partition
/// samplers of the matching layer don't pay the full-`u64` table.
/// The tables are derived state: the MPC memory accounting counts
/// `z` once per family, like the hash coefficients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerprintFamily {
    /// Random evaluation point shared by all mergeable accumulators.
    z: M61,
    /// `pow[b][d] = z^(d << (8b))` for `d < 256`, one block per
    /// exponent byte the family's range can reach.
    pow: Vec<[M61; 256]>,
}

/// Radix blocks needed to cover exponents in `[0, max_exponent]`.
fn blocks_for(max_exponent: u64) -> usize {
    (((64 - max_exponent.leading_zeros()) as usize).div_ceil(8)).max(1)
}

/// `pow[b][d] = z^(d << (8b))`, by repeated squaring across blocks.
fn build_pow(z: M61, blocks: usize) -> Vec<[M61; 256]> {
    let mut pow = vec![[M61::ZERO; 256]; blocks];
    // base_b = z^(256^b).
    let mut base = z;
    for block in pow.iter_mut() {
        let mut acc = M61::ONE;
        for slot in block.iter_mut() {
            *slot = acc;
            acc *= base;
        }
        // acc is now base^256 = z^(256^(b+1)).
        base = acc;
    }
    pow
}

impl FingerprintFamily {
    /// Draws a family with a random evaluation point from `rng`,
    /// covering the full `u64` exponent range.
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::with_blocks(rng, RADIX_BLOCKS)
    }

    fn with_blocks<R: Rng + ?Sized>(rng: &mut R, blocks: usize) -> Self {
        // Avoid z = 0 which would ignore every coordinate but 0. The
        // draw happens before any table building, so bounded and
        // unbounded families of one seed share the evaluation point.
        let z = M61::new(rng.gen_range(2..P));
        FingerprintFamily {
            z,
            pow: build_pow(z, blocks),
        }
    }

    /// Draws a family deterministically from a seed, covering the
    /// full `u64` exponent range.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        FingerprintFamily::new(&mut rng)
    }

    /// Draws a family deterministically from a seed with power
    /// tables covering only exponents in `[0, max_exponent]` — same
    /// evaluation point as [`FingerprintFamily::from_seed`], smaller
    /// derived state. Terms beyond the coverage stay correct via the
    /// [`FingerprintFamily::term`] ladder fallback.
    pub fn from_seed_bounded(seed: u64, max_exponent: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::with_blocks(&mut rng, blocks_for(max_exponent))
    }

    /// The family's evaluation point (families merge iff it matches).
    #[inline]
    pub fn point(&self) -> M61 {
        self.z
    }

    /// `z^index` — one table multiplication per nonzero index byte.
    ///
    /// Exponents beyond a bounded family's table coverage fall back
    /// to the square-and-multiply ladder (same value, slower): the
    /// one-sparse decoder probes *candidate* indices `index_sum /
    /// value_sum`, which for not-one-sparse cells can lie far outside
    /// the family's coordinate space.
    #[inline]
    pub fn term(&self, index: u64) -> M61 {
        let covered = self.pow.len() * 8;
        if covered < 64 && (index >> covered) != 0 {
            return self.z.pow(index);
        }
        let mut acc = M61::ONE;
        let mut i = index;
        let mut block = 0usize;
        while i != 0 {
            let byte = (i & 0xff) as usize;
            if byte != 0 {
                acc *= self.pow[block][byte];
            }
            i >>= 8;
            block += 1;
        }
        acc
    }

    /// The fingerprint a one-sparse vector with value `weight` at
    /// `index` would have — the one-sparse recovery test's right-hand
    /// side.
    #[inline]
    pub fn expected_one_sparse(&self, index: u64, weight: i64) -> M61 {
        self.term(index) * M61::from_i64(weight)
    }
}

// Only the evaluation point and the table *extent* travel in a
// snapshot; the power tables themselves are derived state, rebuilt on
// load — the same split the MPC memory accounting uses (z counts, the
// tables don't).
impl mpc_snapshot::Persist for FingerprintFamily {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        self.z.save(w);
        w.put_usize(self.pow.len());
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let z = M61::load(r)?;
        let blocks = r.take_usize()?;
        if z.value() < 2 || blocks == 0 || blocks > RADIX_BLOCKS {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "invalid fingerprint family: z={}, blocks={blocks}",
                z.value()
            )));
        }
        Ok(FingerprintFamily {
            z,
            pow: build_pow(z, blocks),
        })
    }
}

impl mpc_snapshot::Persist for Fingerprint {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        self.family.save(w);
        self.acc.save(w);
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        Ok(Fingerprint {
            family: Arc::<FingerprintFamily>::load(r)?,
            acc: M61::load(r)?,
        })
    }
}

/// A running fingerprint `Σ_i X_i · z^i` of an implicitly maintained
/// integer vector `X`, updated coordinate-wise.
///
/// # Examples
///
/// ```
/// use mpc_hashing::fingerprint::Fingerprint;
///
/// let mut a = Fingerprint::from_seed(9);
/// let mut b = a.fresh(); // same evaluation point, zero accumulator
/// a.update(3, 1);
/// b.update(3, -1);
/// a.merge(&b);
/// assert!(a.is_zero()); // X + (-X) = 0
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Shared family randomness (evaluation point + power tables).
    family: Arc<FingerprintFamily>,
    /// Accumulated value `Σ X_i z^i`.
    acc: M61,
}

impl Fingerprint {
    /// Creates a fingerprint with a random evaluation point drawn from
    /// `rng` and a zero accumulator.
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Fingerprint {
            family: Arc::new(FingerprintFamily::new(rng)),
            acc: M61::ZERO,
        }
    }

    /// Creates a fingerprint deterministically from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Fingerprint::new(&mut rng)
    }

    /// Returns a zero-accumulator fingerprint sharing this one's
    /// evaluation point. Only fingerprints with the same evaluation
    /// point may be merged.
    pub fn fresh(&self) -> Self {
        Fingerprint {
            family: Arc::clone(&self.family),
            acc: M61::ZERO,
        }
    }

    /// The shared family randomness.
    #[inline]
    pub fn family(&self) -> &Arc<FingerprintFamily> {
        &self.family
    }

    /// `z^index` via the shared power tables.
    #[inline]
    pub fn term(&self, index: u64) -> M61 {
        self.family.term(index)
    }

    /// Applies `X[index] += delta`.
    #[inline]
    pub fn update(&mut self, index: u64, delta: i64) {
        let term = self.term(index);
        self.apply_term(term, delta);
    }

    /// Applies a precomputed `z^index` term with coefficient `delta`
    /// (the pair-update fast path: one `term` serves both endpoint
    /// sketches of an edge).
    #[inline]
    pub fn apply_term(&mut self, term: M61, delta: i64) {
        self.acc = accumulate(self.acc, term, delta);
    }

    /// Merges another fingerprint of the same family (vector
    /// addition).
    ///
    /// # Panics
    ///
    /// Panics if the two fingerprints use different evaluation points.
    #[inline]
    pub fn merge(&mut self, other: &Fingerprint) {
        assert_eq!(
            self.family.z, other.family.z,
            "cannot merge fingerprints with different evaluation points"
        );
        self.acc += other.acc;
    }

    /// The accumulated field value.
    #[inline]
    pub fn value(&self) -> M61 {
        self.acc
    }

    /// Whether the accumulator is zero (true for the zero vector;
    /// false positives have probability `≤ support / (2^61-1)`).
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.acc.is_zero()
    }

    /// The fingerprint a one-sparse vector with value `weight` at
    /// `index` would have. Comparing against [`Fingerprint::value`]
    /// is the one-sparse recovery test.
    #[inline]
    pub fn expected_one_sparse(&self, index: u64, weight: i64) -> M61 {
        self.family.expected_one_sparse(index, weight)
    }
}

/// Folds `acc += term · delta` with fast paths for the `±1` deltas
/// the graph sketches emit almost exclusively.
#[inline]
pub fn accumulate(acc: M61, term: M61, delta: i64) -> M61 {
    match delta {
        1 => acc + term,
        -1 => acc - term,
        d => acc + term * M61::from_i64(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_vector_is_zero() {
        let f = Fingerprint::from_seed(1);
        assert!(f.is_zero());
    }

    #[test]
    fn update_then_cancel() {
        let mut f = Fingerprint::from_seed(2);
        f.update(10, 3);
        assert!(!f.is_zero());
        f.update(10, -3);
        assert!(f.is_zero());
    }

    #[test]
    fn linearity_under_merge() {
        let base = Fingerprint::from_seed(3);
        let mut direct = base.fresh();
        let mut a = base.fresh();
        let mut b = base.fresh();
        for (i, d) in [(1u64, 2i64), (5, -1), (9, 4), (5, 1)] {
            direct.update(i, d);
        }
        a.update(1, 2);
        a.update(5, -1);
        b.update(9, 4);
        b.update(5, 1);
        a.merge(&b);
        assert_eq!(a.value(), direct.value());
    }

    #[test]
    fn one_sparse_expectation_matches() {
        let mut f = Fingerprint::from_seed(4);
        f.update(42, -7);
        assert_eq!(f.value(), f.expected_one_sparse(42, -7));
        assert_ne!(f.value(), f.expected_one_sparse(42, 7));
        assert_ne!(f.value(), f.expected_one_sparse(41, -7));
    }

    #[test]
    fn two_sparse_rarely_looks_one_sparse() {
        // Not a statistical test: just check a handful of seeds never
        // collide (failure probability ~ 2^-60 each).
        for seed in 0..32 {
            let mut f = Fingerprint::from_seed(seed);
            f.update(7, 1);
            f.update(13, 1);
            // A two-sparse vector with sum 2 and index-sum 20 would be
            // mistaken for one-sparse value 2 at index 10.
            assert_ne!(f.value(), f.expected_one_sparse(10, 2), "seed {seed}");
        }
    }

    #[test]
    fn radix_terms_match_square_and_multiply() {
        // The table-assembled z^i must equal the plain power ladder on
        // arbitrary exponents, including multi-byte ones.
        let fam = FingerprintFamily::from_seed(99);
        let z = fam.point();
        for i in [
            0u64,
            1,
            7,
            255,
            256,
            257,
            65535,
            65536,
            1 << 24,
            (1 << 48) - 3,
        ] {
            assert_eq!(fam.term(i), z.pow(i), "exponent {i}");
        }
    }

    #[test]
    fn bounded_family_matches_unbounded_in_range() {
        // Same seed → same evaluation point and identical terms over
        // the covered range, with proportionally smaller tables.
        let full = FingerprintFamily::from_seed(321);
        let bounded = FingerprintFamily::from_seed_bounded(321, (1 << 20) - 1);
        assert_eq!(full.point(), bounded.point());
        for i in [0u64, 1, 255, 256, 65535, 65536, (1 << 20) - 1] {
            assert_eq!(full.term(i), bounded.term(i), "exponent {i}");
        }
        assert_eq!(super::blocks_for((1 << 20) - 1), 3);
        assert_eq!(super::blocks_for(0), 1);
        assert_eq!(super::blocks_for(u64::MAX), 8);
    }

    #[test]
    fn bounded_family_term_beyond_coverage_falls_back() {
        // The one-sparse decoder probes candidate indices that can
        // exceed the coordinate space; a bounded family must answer
        // them (via the ladder), not panic, and agree with the
        // unbounded family.
        let full = FingerprintFamily::from_seed(77);
        let bounded = FingerprintFamily::from_seed_bounded(77, 255);
        for i in [256u64, 65536, 1 << 20, u64::MAX] {
            assert_eq!(bounded.term(i), full.term(i), "exponent {i}");
            assert_eq!(bounded.term(i), bounded.point().pow(i), "exponent {i}");
        }
    }

    #[test]
    fn family_is_shared_not_copied() {
        let a = Fingerprint::from_seed(5);
        let b = a.fresh();
        assert!(Arc::ptr_eq(a.family(), b.family()));
        assert_eq!(a.family().point(), b.family().point());
    }

    #[test]
    #[should_panic(expected = "different evaluation points")]
    fn merging_unrelated_fingerprints_panics() {
        let mut a = Fingerprint::from_seed(5);
        let b = Fingerprint::from_seed(6);
        a.merge(&b);
    }
}
