//! Linear polynomial fingerprints.
//!
//! A fingerprint of a vector `X` is `F(X) = Σ_i X_i · z^i` over
//! `GF(2^61 - 1)` for a random evaluation point `z`. Two properties
//! matter for the one-sparse recovery test inside every `ℓ0`-sampler
//! level (paper Lemma 3.1):
//!
//! * **Linearity** — `F(X + Y) = F(X) + F(Y)`, so sketches merge by
//!   field addition (paper Remark 3.2).
//! * **Soundness** — a nonzero vector of support `≤ d` fingerprints to
//!   zero with probability at most `d / (2^61 - 1)` over the choice of
//!   `z` (Schwartz–Zippel).

use crate::field::{M61, P};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A running fingerprint `Σ_i X_i · z^i` of an implicitly maintained
/// integer vector `X`, updated coordinate-wise.
///
/// # Examples
///
/// ```
/// use mpc_hashing::fingerprint::Fingerprint;
///
/// let mut a = Fingerprint::from_seed(9);
/// let mut b = a.fresh(); // same evaluation point, zero accumulator
/// a.update(3, 1);
/// b.update(3, -1);
/// a.merge(&b);
/// assert!(a.is_zero()); // X + (-X) = 0
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Random evaluation point shared by all mergeable instances.
    z: M61,
    /// Accumulated value `Σ X_i z^i`.
    acc: M61,
    /// `z^(2^j)` for `j < 64`, shared across the family so every
    /// `z^i` costs only `popcount(i)` multiplications instead of a
    /// full square-and-multiply ladder — total over all of `u64`,
    /// like the `z.pow` ladder it replaces. (Derived state: counted
    /// once per family in the MPC memory accounting, like `z`.)
    pow2: Arc<[M61; 64]>,
}

impl Fingerprint {
    /// Creates a fingerprint with a random evaluation point drawn from
    /// `rng` and a zero accumulator.
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Avoid z = 0 which would ignore every coordinate but 0.
        let z = M61::new(rng.gen_range(2..P));
        let mut pow2 = [M61::ZERO; 64];
        let mut acc = z;
        for slot in pow2.iter_mut() {
            *slot = acc;
            acc = acc * acc;
        }
        Fingerprint {
            z,
            acc: M61::ZERO,
            pow2: Arc::new(pow2),
        }
    }

    /// Creates a fingerprint deterministically from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Fingerprint::new(&mut rng)
    }

    /// Returns a zero-accumulator fingerprint sharing this one's
    /// evaluation point. Only fingerprints with the same evaluation
    /// point may be merged.
    pub fn fresh(&self) -> Self {
        Fingerprint {
            z: self.z,
            acc: M61::ZERO,
            pow2: Arc::clone(&self.pow2),
        }
    }

    /// `z^index` via the shared power table —
    /// `popcount(index)` multiplications.
    #[inline]
    pub fn term(&self, index: u64) -> M61 {
        let mut acc = M61::ONE;
        let mut i = index;
        while i != 0 {
            let j = i.trailing_zeros();
            acc *= self.pow2[j as usize];
            i &= i - 1;
        }
        acc
    }

    /// Applies `X[index] += delta`.
    #[inline]
    pub fn update(&mut self, index: u64, delta: i64) {
        let term = self.term(index);
        self.apply_term(term, delta);
    }

    /// Applies a precomputed `z^index` term with coefficient `delta`
    /// (the pair-update fast path: one `term` serves both endpoint
    /// sketches of an edge).
    #[inline]
    pub fn apply_term(&mut self, term: M61, delta: i64) {
        match delta {
            1 => self.acc += term,
            -1 => self.acc -= term,
            d => self.acc += term * M61::from_i64(d),
        }
    }

    /// Merges another fingerprint of the same family (vector
    /// addition).
    ///
    /// # Panics
    ///
    /// Panics if the two fingerprints use different evaluation points.
    #[inline]
    pub fn merge(&mut self, other: &Fingerprint) {
        assert_eq!(
            self.z, other.z,
            "cannot merge fingerprints with different evaluation points"
        );
        self.acc += other.acc;
    }

    /// The accumulated field value.
    #[inline]
    pub fn value(&self) -> M61 {
        self.acc
    }

    /// Whether the accumulator is zero (true for the zero vector;
    /// false positives have probability `≤ support / (2^61-1)`).
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.acc.is_zero()
    }

    /// The fingerprint a one-sparse vector with value `weight` at
    /// `index` would have. Comparing against [`Fingerprint::value`]
    /// is the one-sparse recovery test.
    #[inline]
    pub fn expected_one_sparse(&self, index: u64, weight: i64) -> M61 {
        self.term(index) * M61::from_i64(weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_vector_is_zero() {
        let f = Fingerprint::from_seed(1);
        assert!(f.is_zero());
    }

    #[test]
    fn update_then_cancel() {
        let mut f = Fingerprint::from_seed(2);
        f.update(10, 3);
        assert!(!f.is_zero());
        f.update(10, -3);
        assert!(f.is_zero());
    }

    #[test]
    fn linearity_under_merge() {
        let base = Fingerprint::from_seed(3);
        let mut direct = base.fresh();
        let mut a = base.fresh();
        let mut b = base.fresh();
        for (i, d) in [(1u64, 2i64), (5, -1), (9, 4), (5, 1)] {
            direct.update(i, d);
        }
        a.update(1, 2);
        a.update(5, -1);
        b.update(9, 4);
        b.update(5, 1);
        a.merge(&b);
        assert_eq!(a.value(), direct.value());
    }

    #[test]
    fn one_sparse_expectation_matches() {
        let mut f = Fingerprint::from_seed(4);
        f.update(42, -7);
        assert_eq!(f.value(), f.expected_one_sparse(42, -7));
        assert_ne!(f.value(), f.expected_one_sparse(42, 7));
        assert_ne!(f.value(), f.expected_one_sparse(41, -7));
    }

    #[test]
    fn two_sparse_rarely_looks_one_sparse() {
        // Not a statistical test: just check a handful of seeds never
        // collide (failure probability ~ 2^-60 each).
        for seed in 0..32 {
            let mut f = Fingerprint::from_seed(seed);
            f.update(7, 1);
            f.update(13, 1);
            // A two-sparse vector with sum 2 and index-sum 20 would be
            // mistaken for one-sparse value 2 at index 10.
            assert_ne!(f.value(), f.expected_one_sparse(10, 2), "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "different evaluation points")]
    fn merging_unrelated_fingerprints_panics() {
        let mut a = Fingerprint::from_seed(5);
        let b = Fingerprint::from_seed(6);
        a.merge(&b);
    }
}
