//! *k*-wise independent hash families.
//!
//! A random degree-`(k-1)` polynomial over `GF(2^61 - 1)` evaluated at
//! the key is a *k*-wise independent hash function — the textbook
//! construction used by the `ℓ0`-samplers of the paper (Lemma 3.1) and
//! by the vertex-partitioning hashes of the matching algorithms
//! (Sections 8.1–8.2, pairwise and four-wise families).

use crate::field::{M61, P};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A hash function drawn from a *k*-wise independent family.
///
/// Keys are `u64` values `< 2^61 - 1`; outputs are uniform in
/// `[0, 2^61 - 1)`. Helpers map outputs onto ranges or geometric
/// levels.
///
/// # Examples
///
/// ```
/// use mpc_hashing::kwise::KWiseHash;
///
/// let h = KWiseHash::from_seed(4, 7); // four-wise independent
/// let bucket = h.eval_range(12345, 10);
/// assert!(bucket < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWiseHash {
    /// Independence parameter `k` (number of live coefficients).
    k: usize,
    /// Polynomial coefficients, constant term first, stored inline
    /// (no heap indirection on the evaluation hot path). The leading
    /// coefficient is forced nonzero so the polynomial has true
    /// degree `k-1`.
    coeffs: [M61; KWiseHash::MAX_K],
}

impl KWiseHash {
    /// Largest supported independence parameter (the workspace uses
    /// `k ≤ 4`; the inline bound keeps evaluation allocation-free).
    pub const MAX_K: usize = 8;

    /// Draws a function from the *k*-wise independent family using the
    /// supplied RNG.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > KWiseHash::MAX_K`.
    pub fn new<R: Rng + ?Sized>(k: usize, rng: &mut R) -> Self {
        // lint: allow(panic-reachability): documented "# Panics" precondition — k is a compile-time family parameter
        assert!(k >= 1, "independence parameter k must be at least 1");
        // lint: allow(panic-reachability): documented "# Panics" precondition — k is a compile-time family parameter
        assert!(
            k <= Self::MAX_K,
            "independence parameter k above {}",
            Self::MAX_K
        );
        let mut coeffs = [M61::ZERO; Self::MAX_K];
        for c in coeffs.iter_mut().take(k) {
            *c = M61::new(rng.gen_range(0..P));
        }
        // Force true degree k-1 (harmless for independence, keeps the
        // family honest for k >= 2).
        if k >= 2 && coeffs[k - 1].is_zero() {
            coeffs[k - 1] = M61::ONE;
        }
        KWiseHash { k, coeffs }
    }

    /// Draws a function deterministically from a seed.
    pub fn from_seed(k: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        KWiseHash::new(k, &mut rng)
    }

    /// The independence parameter `k` of the family this function was
    /// drawn from.
    pub fn independence(&self) -> usize {
        self.k
    }

    /// Evaluates the hash on `key`, returning a uniform value in
    /// `[0, 2^61 - 1)`.
    #[inline]
    pub fn eval(&self, key: u64) -> u64 {
        let x = M61::new(key);
        // Horner evaluation over the live coefficients.
        let mut acc = M61::ZERO;
        for &c in self.coeffs[..self.k].iter().rev() {
            acc = acc * x + c;
        }
        acc.value()
    }

    /// Evaluates the hash and maps it onto `[0, range)`.
    ///
    /// # Panics
    ///
    /// Panics if `range == 0`.
    #[inline]
    pub fn eval_range(&self, key: u64, range: u64) -> u64 {
        // lint: allow(panic-reachability): documented "# Panics" precondition — a zero range is a caller bug
        assert!(range > 0, "range must be positive");
        // Multiply-shift style range reduction; bias is O(range / P),
        // negligible for the ranges used here.
        ((self.eval(key) as u128 * range as u128) >> 61) as u64
    }

    /// Evaluates the hash and returns a geometric level: level `j` is
    /// returned with probability `2^-(j+1)` for `j < max_level`, and
    /// any overshoot is clamped to `max_level`.
    ///
    /// The `ℓ0`-sampler assigns coordinate `i` to all levels
    /// `0..=level(i)`; equivalently it stores `i` at the single level
    /// returned here and the sampler sums suffixes. We use the
    /// standard one-level-per-item variant: coordinate `i` lives at
    /// exactly `geometric_level(i)`.
    #[inline]
    pub fn geometric_level(&self, key: u64, max_level: u32) -> u32 {
        let v = self.eval(key);
        // 61 usable random bits; count trailing zeros.
        let tz = if v == 0 { 61 } else { v.trailing_zeros() };
        tz.min(max_level)
    }

    /// Evaluates the hash as a Boolean coin with probability 1/2.
    #[inline]
    pub fn eval_bit(&self, key: u64) -> bool {
        self.eval(key) & 1 == 1
    }
}

// The drawn coefficients *are* the function: persisting them verbatim
// makes a restored hash evaluate bit-identically without re-seeding.
impl mpc_snapshot::Persist for KWiseHash {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.k);
        for c in &self.coeffs {
            c.save(w);
        }
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let k = r.take_usize()?;
        if k == 0 || k > Self::MAX_K {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "independence parameter {k} outside 1..={}",
                Self::MAX_K
            )));
        }
        let mut coeffs = [M61::ZERO; Self::MAX_K];
        for c in coeffs.iter_mut() {
            *c = M61::load(r)?;
        }
        Ok(KWiseHash { k, coeffs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_from_seed() {
        let a = KWiseHash::from_seed(2, 99);
        let b = KWiseHash::from_seed(2, 99);
        for key in 0..100 {
            assert_eq!(a.eval(key), b.eval(key));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = KWiseHash::from_seed(2, 1);
        let b = KWiseHash::from_seed(2, 2);
        let same = (0..64).filter(|&k| a.eval(k) == b.eval(k)).count();
        assert!(same < 8, "two random hash functions should disagree");
    }

    #[test]
    fn range_is_respected() {
        let h = KWiseHash::from_seed(3, 5);
        for key in 0..1000 {
            assert!(h.eval_range(key, 17) < 17);
        }
    }

    #[test]
    fn range_roughly_uniform() {
        let h = KWiseHash::from_seed(2, 31);
        let range = 8u64;
        let mut counts = [0usize; 8];
        let trials = 8000;
        for key in 0..trials {
            counts[h.eval_range(key, range) as usize] += 1;
        }
        let expect = trials as f64 / range as f64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.2, "bucket {b} count {c} deviates {dev:.2}");
        }
    }

    #[test]
    fn geometric_levels_halve() {
        let h = KWiseHash::from_seed(2, 77);
        let mut level_counts = [0usize; 12];
        let trials = 1 << 15;
        for key in 0..trials {
            let l = h.geometric_level(key, 11);
            level_counts[l as usize] += 1;
        }
        // Level 0 should hold about half the keys, level 1 a quarter...
        assert!((level_counts[0] as f64 / trials as f64 - 0.5).abs() < 0.05);
        assert!((level_counts[1] as f64 / trials as f64 - 0.25).abs() < 0.05);
        assert!((level_counts[2] as f64 / trials as f64 - 0.125).abs() < 0.04);
    }

    #[test]
    fn pairwise_collision_rate_close_to_random() {
        // For a pairwise family, Pr[h(x) = h(y) mod R] ~ 1/R.
        let range = 64u64;
        let mut collisions = 0usize;
        let mut total = 0usize;
        for seed in 0..40 {
            let h = KWiseHash::from_seed(2, seed);
            for x in 0..40u64 {
                for y in (x + 1)..40 {
                    total += 1;
                    if h.eval_range(x, range) == h.eval_range(y, range) {
                        collisions += 1;
                    }
                }
            }
        }
        let rate = collisions as f64 / total as f64;
        assert!(
            (rate - 1.0 / range as f64).abs() < 0.01,
            "collision rate {rate}"
        );
    }

    #[test]
    #[should_panic(expected = "independence parameter k")]
    fn zero_k_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = KWiseHash::new(0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_panics() {
        let h = KWiseHash::from_seed(2, 0);
        let _ = h.eval_range(3, 0);
    }
}
