//! Genuinely distributed primitives on the exchange engine.
//!
//! These run real multi-round protocols on a [`Cluster`] and return
//! their measured round counts. Their purpose in the workspace is to
//! *validate the cost formulas* that [`MpcContext`] charges: the tests
//! here assert `measured rounds ≤ charged formula` for broadcast,
//! converge-cast, and sample sort across a grid of cluster shapes.
//!
//! [`MpcContext`]: crate::context::MpcContext

use crate::cluster::{Cluster, Msg};
use crate::error::MpcError;

/// Fan-out of a broadcast/aggregation tree for payloads of
/// `payload_words` on machines of capacity `capacity`: a machine can
/// forward at most `capacity / payload_words` copies per round.
pub fn tree_fanout(capacity: u64, payload_words: u64) -> u64 {
    (capacity / payload_words.max(1)).max(2)
}

/// Rounds a fan-out-`f` tree needs to span `machines` machines.
pub fn tree_rounds(machines: usize, fanout: u64) -> u64 {
    if machines <= 1 {
        return 1;
    }
    let mut covered: u64 = 1;
    let mut rounds = 0;
    while covered < machines as u64 {
        covered = covered.saturating_mul(1 + fanout);
        rounds += 1;
    }
    rounds
}

/// Broadcasts `payload` from machine 0 to every machine's buffer via
/// a real fan-out tree. Returns the number of rounds used.
///
/// # Errors
///
/// Propagates cap violations from the engine (a payload larger than
/// the capacity cannot be broadcast).
pub fn broadcast(cluster: &mut Cluster, payload: &[u64]) -> Result<u64, MpcError> {
    let machines = cluster.machines();
    let fanout = tree_fanout(cluster.capacity(), payload.len() as u64) as usize;
    let start = cluster.rounds();
    // Machines that already hold the payload, in the order they got it.
    let mut holders: Vec<usize> = vec![0];
    let mut has: Vec<bool> = vec![false; machines];
    has[0] = true;
    cluster.buffer_mut(0).clear();
    cluster.buffer_mut(0).extend_from_slice(payload);
    while holders.len() < machines {
        // Plan this round: holder i forwards to the next `fanout`
        // uncovered machines.
        let mut plan: Vec<Vec<usize>> = vec![Vec::new(); machines];
        let mut next: usize = 0;
        for &h in &holders {
            for _ in 0..fanout {
                while next < machines && has[next] {
                    next += 1;
                }
                if next >= machines {
                    break;
                }
                plan[h].push(next);
                has[next] = true;
                next += 1;
            }
        }
        let payload_vec = payload.to_vec();
        cluster.exchange(|id, buf, inbox| {
            for words in inbox {
                *buf = words;
            }
            plan[id]
                .iter()
                .map(|&d| Msg::new(d, payload_vec.clone()))
                .collect()
        })?;
        for targets in &plan {
            holders.extend(targets.iter().copied());
        }
    }
    // One final round to deliver the last wave.
    cluster.exchange(|_id, buf, inbox| {
        for words in inbox {
            *buf = words;
        }
        vec![]
    })?;
    Ok(cluster.rounds() - start)
}

/// Converge-cast: folds every machine's buffer into machine 0 using a
/// real aggregation tree, combining with `merge` (which must be
/// associative and size-preserving, e.g. coordinate-wise sum of
/// sketches). Returns the rounds used.
///
/// # Errors
///
/// Propagates cap violations from the engine.
pub fn converge_cast<F>(cluster: &mut Cluster, mut merge: F) -> Result<u64, MpcError>
where
    F: FnMut(&mut Vec<u64>, Vec<u64>),
{
    let machines = cluster.machines();
    let payload = cluster
        .buffer(0)
        .len()
        .max(1)
        .try_into()
        .unwrap_or(u64::MAX);
    let fanout = tree_fanout(cluster.capacity(), payload) as usize;
    let start = cluster.rounds();
    // Live = machines still holding partial aggregates. Each round,
    // groups of (fanout+1) live machines merge into their first member.
    let mut live: Vec<usize> = (0..machines).collect();
    while live.len() > 1 {
        let mut dest_of: Vec<Option<usize>> = vec![None; machines];
        let mut new_live = Vec::new();
        for group in live.chunks(fanout + 1) {
            let head = group[0];
            new_live.push(head);
            for &m in &group[1..] {
                dest_of[m] = Some(head);
            }
        }
        cluster.exchange(|id, buf, inbox| {
            for words in inbox {
                merge(buf, words);
            }
            match dest_of[id] {
                Some(d) => vec![Msg::new(d, std::mem::take(buf))],
                None => vec![],
            }
        })?;
        live = new_live;
    }
    // Final delivery round.
    cluster.exchange(|_id, buf, inbox| {
        for words in inbox {
            merge(buf, words);
        }
        vec![]
    })?;
    Ok(cluster.rounds() - start)
}

/// Distributed sample sort of all words held in machine buffers.
/// After it returns, machine `i`'s buffer is sorted and every word on
/// machine `i` is `≤` every word on machine `i+1`. Returns the rounds
/// used.
///
/// Data is assumed balanced enough that no machine's final share
/// exceeds its capacity (true for the uniform test workloads; the
/// full GSZ'11 sort would add a rebalancing pass).
///
/// # Errors
///
/// Propagates cap violations from the engine.
pub fn sample_sort(cluster: &mut Cluster) -> Result<u64, MpcError> {
    let machines = cluster.machines();
    let start = cluster.rounds();
    if machines == 1 {
        cluster.buffer_mut(0).sort_unstable();
        cluster.exchange(|_, _, _| vec![])?; // still a round of "work"
        return Ok(cluster.rounds() - start);
    }
    // Round 1: every machine sends an evenly spaced sample to machine 0.
    let sample_per_machine = 4usize;
    cluster.exchange(|_id, buf, _inbox| {
        buf.sort_unstable();
        let k = buf.len();
        let sample: Vec<u64> = if k == 0 {
            vec![]
        } else {
            (0..sample_per_machine)
                .map(|i| buf[i * k / sample_per_machine])
                .collect()
        };
        vec![Msg::new(0, sample)]
    })?;
    // Round 2: machine 0 merges samples and picks machines-1 pivots;
    // pivots get broadcast (tree) below.
    let mut pivots: Vec<u64> = Vec::new();
    cluster.exchange(|id, _buf, inbox| {
        if id == 0 {
            let mut all: Vec<u64> = inbox.into_iter().flatten().collect();
            all.sort_unstable();
            for i in 1..machines {
                if !all.is_empty() {
                    pivots.push(all[i * all.len() / machines]);
                }
            }
        }
        vec![]
    })?;
    // Broadcast pivots with the real tree. We temporarily stash each
    // machine's data because `broadcast` overwrites buffers.
    let stashed: Vec<Vec<u64>> = (0..machines)
        .map(|m| std::mem::take(cluster.buffer_mut(m)))
        .collect();
    broadcast(cluster, &pivots)?;
    for (m, data) in stashed.into_iter().enumerate() {
        *cluster.buffer_mut(m) = data;
    }
    // Routing round: send each element to its pivot bucket.
    let pivots_route = pivots.clone();
    cluster.exchange(|_id, buf, _inbox| {
        let data = std::mem::take(buf);
        let mut by_dest: Vec<Vec<u64>> = vec![Vec::new(); machines];
        for w in data {
            let dest = pivots_route.partition_point(|&p| p <= w);
            by_dest[dest].push(w);
        }
        by_dest
            .into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(d, v)| Msg::new(d, v))
            .collect()
    })?;
    // Delivery + local sort round.
    cluster.exchange(|_id, buf, inbox| {
        buf.extend(inbox.into_iter().flatten());
        buf.sort_unstable();
        vec![]
    })?;
    Ok(cluster.rounds() - start)
}

/// Distributed exclusive prefix sum (the classic MPC scan): after it
/// returns, machine `i`'s buffer is prefixed with one extra word
/// holding the sum of all words on machines `< i`. Returns the rounds
/// used.
///
/// Protocol: the Hillis–Steele doubling scan — at step `r`, machine
/// `i` forwards its running sum to machine `i + 2^r`. Every message
/// is one word, so the scan is cap-safe at any cluster shape, in
/// `⌈log2 M⌉ + 1` rounds.
///
/// # Errors
///
/// Propagates cap violations from the engine.
pub fn prefix_sum(cluster: &mut Cluster) -> Result<u64, MpcError> {
    let machines = cluster.machines();
    let start = cluster.rounds();
    let locals: Vec<u64> = (0..machines)
        .map(|m| cluster.buffer(m).iter().sum())
        .collect();
    // `acc[i]` mirrors machine i's running inclusive sum; it is
    // updated only with values that really moved through the engine.
    let mut acc: Vec<u64> = locals.clone();
    let mut step = 1usize;
    while step < machines {
        let snapshot = acc.clone();
        let mut delivered: Vec<(usize, u64)> = Vec::new();
        cluster.exchange(|id, _buf, inbox| {
            for msg in inbox {
                delivered.push((id, msg[0]));
            }
            if id + step < machines {
                vec![Msg::new(id + step, vec![snapshot[id]])]
            } else {
                vec![]
            }
        })?;
        for i in step..machines {
            acc[i] += snapshot[i - step];
        }
        step <<= 1;
    }
    // Drain the last wave and install the exclusive offsets.
    cluster.exchange(|id, buf, _inbox| {
        buf.insert(0, acc[id] - locals[id]);
        vec![]
    })?;
    Ok(cluster.rounds() - start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn tree_rounds_formula() {
        assert_eq!(tree_rounds(1, 4), 1);
        // fanout 4: 1 -> 5 -> 25 machines covered.
        assert_eq!(tree_rounds(5, 4), 1);
        assert_eq!(tree_rounds(25, 4), 2);
        assert_eq!(tree_rounds(26, 4), 3);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        for machines in [1usize, 2, 5, 17, 40] {
            let mut c = Cluster::new(machines, 16);
            let payload = vec![3, 1, 4];
            let rounds = broadcast(&mut c, &payload).unwrap();
            for m in 0..machines {
                assert_eq!(c.buffer(m), &payload[..], "machine {m} of {machines}");
            }
            // Measured rounds within the charged bound (+1 delivery).
            let fanout = tree_fanout(16, 3);
            assert!(
                rounds <= tree_rounds(machines, fanout) + 1,
                "machines={machines} rounds={rounds}"
            );
        }
    }

    #[test]
    fn broadcast_too_large_payload_fails() {
        let mut c = Cluster::new(3, 4);
        let err = broadcast(&mut c, &[0; 5]).unwrap_err();
        assert!(matches!(err, MpcError::SendCapExceeded { .. }));
    }

    #[test]
    fn converge_cast_sums() {
        for machines in [1usize, 3, 10, 33] {
            let mut c = Cluster::new(machines, 64);
            for m in 0..machines {
                *c.buffer_mut(m) = vec![m as u64, 1];
            }
            let rounds = converge_cast(&mut c, |acc, other| {
                if acc.is_empty() {
                    *acc = other;
                } else {
                    for (a, b) in acc.iter_mut().zip(other) {
                        *a += b;
                    }
                }
            })
            .unwrap();
            let expect_sum: u64 = (0..machines as u64).sum();
            assert_eq!(c.buffer(0), &[expect_sum, machines as u64]);
            let fanout = tree_fanout(64, 2);
            assert!(rounds <= tree_rounds(machines, fanout) + 2);
        }
    }

    #[test]
    fn sample_sort_sorts_globally() {
        let mut rng = StdRng::seed_from_u64(8);
        let machines = 8;
        let per = 12;
        let mut c = Cluster::new(machines, 128);
        let mut all: Vec<u64> = Vec::new();
        for m in 0..machines {
            let data: Vec<u64> = (0..per).map(|_| rng.gen_range(0..1000)).collect();
            all.extend(&data);
            *c.buffer_mut(m) = data;
        }
        let rounds = sample_sort(&mut c).unwrap();
        all.sort_unstable();
        let mut got = Vec::new();
        for m in 0..machines {
            let b = c.buffer(m).to_vec();
            assert!(b.windows(2).all(|w| w[0] <= w[1]), "machine {m} sorted");
            if m + 1 < machines {
                if let (Some(&last), Some(&first)) = (b.last(), c.buffer(m + 1).first()) {
                    assert!(last <= first, "boundary {m}");
                }
            }
            got.extend(b);
        }
        assert_eq!(got, all);
        // Constant number of exchanges plus a broadcast tree.
        assert!(rounds <= 4 + tree_rounds(machines, tree_fanout(128, 7)) + 1);
    }

    #[test]
    fn sample_sort_single_machine() {
        let mut c = Cluster::new(1, 32);
        *c.buffer_mut(0) = vec![5, 1, 4, 2];
        sample_sort(&mut c).unwrap();
        assert_eq!(c.buffer(0), &[1, 2, 4, 5]);
    }

    #[test]
    fn prefix_sum_computes_exclusive_offsets() {
        for machines in [1usize, 2, 5, 12] {
            let mut c = Cluster::new(machines, 64);
            let mut expect_offset = Vec::new();
            let mut acc = 0u64;
            for m in 0..machines {
                let data: Vec<u64> = (0..m as u64 + 1).collect(); // sum = m(m+1)/2
                expect_offset.push(acc);
                acc += data.iter().sum::<u64>();
                *c.buffer_mut(m) = data;
            }
            prefix_sum(&mut c).unwrap();
            for (m, expect) in expect_offset.iter().enumerate() {
                assert_eq!(c.buffer(m)[0], *expect, "machine {m} of {machines}");
            }
        }
    }

    #[test]
    fn prefix_sum_cap_safe_on_tiny_machines() {
        // One-word messages: even capacity 2 suffices at any shape.
        let machines = 9;
        let mut c = Cluster::new(machines, 2);
        for m in 0..machines {
            *c.buffer_mut(m) = vec![1];
        }
        let rounds = prefix_sum(&mut c).unwrap();
        for m in 0..machines {
            assert_eq!(c.buffer(m)[0], m as u64, "machine {m}");
        }
        // ⌈log2 9⌉ + 1 = 5 rounds.
        assert_eq!(rounds, 5);
    }
}
