//! Host-side parallel execution: the thread pool that makes the
//! simulator scale with the hardware.
//!
//! Everything in this crate *accounts* parallelism exactly (rounds
//! max-compose across machine groups), but until now every machine,
//! maintainer, and sketch block was simulated on one host thread —
//! wall-clock, not round complexity, capped every large run. A
//! [`WorkerPool`] is a fixed set of OS threads spawned once and kept
//! for the lifetime of the owner (dropping the pool joins every
//! thread):
//!
//! * **Per-maintainer fan-out** — the Session engine (in
//!   `mpc-stream-core`) dispatches one branch job per maintainer per
//!   chunk through [`WorkerPool::execute`]; each branch runs against a
//!   forked accounting context whose event log is replayed serially
//!   afterwards, so the charged rounds/words stay bit-identical to
//!   serial execution (see `MpcContext::fork_for_branch`).
//! * **Intra-group work stealing** — [`WorkerPool::scope_indices`] and
//!   [`WorkerPool::steal_each`] self-schedule a set of disjoint tasks
//!   (per-tour Euler-tour shards, sketch-arena vertex blocks) over the
//!   idle lanes: workers claim the next unclaimed task from a shared
//!   atomic counter, and the *calling* thread participates too, so a
//!   scope always makes progress even when every pool lane is busy
//!   with an outer job (nested scopes cannot deadlock).
//!
//! Worker count selection: [`workers_from_env`] reads the
//! `MPC_WORKERS` environment variable (the CI matrix runs the
//! equivalence suites at `MPC_WORKERS=1` and `=4`); `1` means serial
//! execution with no threads at all.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A boxed unit of work for the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads with a shared job queue.
///
/// Threads are spawned once at construction and joined when the pool
/// is dropped — no thread outlives its pool. Jobs submitted through
/// [`WorkerPool::execute`] are claimed by idle workers in FIFO order;
/// a job that panics poisons neither the queue nor its worker (the
/// panic is contained and the lane keeps serving).
///
/// # Examples
///
/// ```
/// use mpc_sim::executor::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = WorkerPool::new(2);
/// let hits = AtomicUsize::new(0);
/// pool.scope_indices(100, |_| {
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// // Dropping the pool joins both threads.
/// drop(pool);
/// ```
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    lanes: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("lanes", &self.lanes)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `lanes` worker threads (at least 1).
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..lanes)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("mpc-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn mpc worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            handles,
            lanes,
        }
    }

    /// Number of worker threads.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Enqueues a job for the next idle worker.
    pub fn execute(&self, job: Job) {
        self.sender
            .as_ref()
            // lint: allow(panic-reachability): pool lifecycle invariant — the sender is dropped only in Drop
            .expect("pool sender lives until drop")
            .send(job)
            // lint: allow(panic-reachability): pool lifecycle invariant — workers outlive every queued job
            .expect("workers live until the pool is dropped");
    }

    /// Runs `f(i)` exactly once for every `i in 0..n`, self-scheduling
    /// indices over the pool's idle lanes **and** the calling thread.
    ///
    /// This is the work-stealing primitive for disjoint task sets:
    /// each lane repeatedly claims the next unclaimed index from a
    /// shared counter, so an uneven workload balances itself. The
    /// calling thread participates and the call only returns when all
    /// `n` tasks have finished, which makes nested scopes safe — a
    /// scope opened from inside a pool job still completes even if no
    /// other lane ever becomes free.
    ///
    /// # Panics
    ///
    /// Re-raises (as a new panic) if any task panicked; remaining
    /// tasks still run, and the pool stays usable.
    pub fn scope_indices<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let scope = Arc::new(ScopeState::new(n));
        // Erase the closure's lifetime so helper jobs can carry it
        // through the 'static queue.
        // SAFETY: the erased reference never outlives `f`. This
        // function does not return until `scope.wait()` has seen every
        // claimed index complete, and a helper that arrives after the
        // scope is exhausted finds the claim counter spent and never
        // touches `f`; `F: Sync` makes the sharing across lanes sound.
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        let f_static: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<_, &'static (dyn Fn(usize) + Sync)>(f_ref) };
        let helpers = self.lanes.min(n.saturating_sub(1));
        for _ in 0..helpers {
            let scope = Arc::clone(&scope);
            self.execute(Box::new(move || scope.run(f_static)));
        }
        scope.run(f_static);
        scope.wait();
        if scope.panicked.load(Ordering::Acquire) {
            // lint: allow(panic-reachability): deliberate relay — a lane panic must abort the whole steal scope, not vanish
            panic!("a worker lane panicked inside a parallel scope");
        }
    }

    /// Applies `f` to every element of `items`, stealing elements
    /// across the pool lanes and the calling thread. Each element is
    /// claimed by exactly one lane, so the `&mut` accesses are
    /// disjoint.
    ///
    /// # Panics
    ///
    /// As [`WorkerPool::scope_indices`].
    pub fn steal_each<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        // Debug builds audit the disjointness claim the SAFETY
        // argument below rests on: every element claimed exactly once.
        #[cfg(debug_assertions)]
        let claims: Vec<AtomicUsize> = (0..items.len()).map(|_| AtomicUsize::new(0)).collect();
        let base = items.as_mut_ptr() as usize;
        self.scope_indices(items.len(), |i| {
            #[cfg(debug_assertions)]
            claims[i].fetch_add(1, Ordering::Relaxed);
            // SAFETY: every index in 0..len is claimed exactly once
            // (atomic counter), so no two lanes alias an element, and
            // the slice outlives the scope (scope_indices blocks).
            let item = unsafe { &mut *(base as *mut T).add(i) };
            f(item);
        });
        #[cfg(debug_assertions)]
        for (i, c) in claims.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            debug_assert_eq!(
                n, 1,
                "steal_each element {i} claimed {n} times — lanes aliased"
            );
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker loop; then join.
        drop(self.sender.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            let guard = receiver.lock().expect("job queue lock");
            guard.recv()
        };
        match job {
            Ok(job) => {
                // Contain panics: a poisoned job must not take its
                // lane down with it (scopes track panics themselves).
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            Err(_) => return, // pool dropped
        }
    }
}

/// Shared state of one work-stealing scope.
struct ScopeState {
    next: AtomicUsize,
    done: AtomicUsize,
    n: usize,
    panicked: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl ScopeState {
    fn new(n: usize) -> Self {
        ScopeState {
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            n,
            panicked: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                // lint: allow(panic-reachability): poison-free by construction — lane panics are caught before the lock
                let _guard = self.lock.lock().expect("scope lock");
                self.cv.notify_all();
            }
        }
    }

    fn wait(&self) {
        // lint: allow(panic-reachability): poison-free by construction — lane panics are caught before the lock
        let mut guard = self.lock.lock().expect("scope lock");
        while self.done.load(Ordering::Acquire) < self.n {
            // lint: allow(panic-reachability): poison-free by construction — lane panics are caught before the lock
            guard = self.cv.wait(guard).expect("scope condvar");
        }
    }
}

/// Reads the `MPC_WORKERS` environment variable: the default worker
/// count for newly created `Session`s (and anything else that wants a
/// host-wide setting). `None` when unset or unparsable; values are
/// clamped to at least 1.
pub fn workers_from_env() -> Option<usize> {
    std::env::var("MPC_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|w| w.max(1))
}

/// A host-wide kernel-tier override parsed from `MPC_KERNEL`.
///
/// This crate only parses the setting (environment reads are confined
/// to `mpc-sim`, like [`workers_from_env`]); the sketch crate maps it
/// onto its dispatch enum and clamps it to what the host CPU actually
/// supports, so an impossible request degrades instead of crashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelOverride {
    /// Force the portable scalar kernels.
    Scalar,
    /// Force the SSE2 kernels (x86-64 baseline).
    Sse2,
    /// Force the AVX2 kernels.
    Avx2,
}

/// Reads the `MPC_KERNEL` environment variable: the requested sketch
/// kernel tier (`scalar`, `sse2`, or `avx2`, case-insensitive).
/// `None` when unset or not one of the three names — the caller then
/// auto-detects the best supported tier.
pub fn kernel_from_env() -> Option<KernelOverride> {
    match std::env::var("MPC_KERNEL")
        .ok()?
        .trim()
        .to_ascii_lowercase()
        .as_str()
    {
        "scalar" => Some(KernelOverride::Scalar),
        "sse2" => Some(KernelOverride::Sse2),
        "avx2" => Some(KernelOverride::Avx2),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_every_index_exactly_once() {
        let pool = WorkerPool::new(4);
        let marks: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.scope_indices(marks.len(), |i| {
            marks[i].fetch_add(1, Ordering::Relaxed);
        });
        for m in &marks {
            assert_eq!(m.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn steal_each_gives_disjoint_mutable_access() {
        let pool = WorkerPool::new(3);
        let mut items: Vec<u64> = (0..500).collect();
        pool.steal_each(&mut items, |x| *x = *x * 2 + 1);
        for (i, &x) in items.iter().enumerate() {
            assert_eq!(x, i as u64 * 2 + 1);
        }
    }

    #[test]
    fn nested_scopes_complete_without_deadlock() {
        let pool = WorkerPool::new(2);
        let total = AtomicU64::new(0);
        pool.scope_indices(8, |_| {
            // Inner scope opened while the outer occupies the lanes:
            // the claiming thread drives it to completion itself.
            pool.scope_indices(8, |j| {
                total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 28);
    }

    #[test]
    fn drop_joins_all_threads() {
        let pool = WorkerPool::new(3);
        let (tx, rx) = channel();
        for _ in 0..3 {
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                tx.send(std::thread::current().id()).unwrap();
            }));
        }
        drop(tx);
        let ids: Vec<_> = rx.iter().collect();
        assert_eq!(ids.len(), 3);
        // Drop blocks until every worker thread has exited.
        drop(pool);
    }

    #[test]
    fn scope_survives_a_panicking_task_and_reports_it() {
        let pool = WorkerPool::new(2);
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope_indices(16, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                assert!(i != 7, "induced failure");
            });
        }));
        assert!(result.is_err(), "the scope re-raises the task panic");
        assert_eq!(ran.load(Ordering::Relaxed), 16, "remaining tasks ran");
        // The pool is still serviceable after the panic.
        let after = AtomicUsize::new(0);
        pool.scope_indices(4, |_| {
            after.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(after.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn single_lane_pool_is_still_correct() {
        let pool = WorkerPool::new(1);
        let mut items = vec![0u32; 64];
        pool.steal_each(&mut items, |x| *x += 1);
        assert!(items.iter().all(|&x| x == 1));
    }

    #[test]
    fn workers_from_env_parses_and_clamps() {
        // Not set in the test environment by default; exercise the
        // parser directly through a scoped set/remove.
        std::env::set_var("MPC_WORKERS_TEST_PROBE", "0");
        // workers_from_env reads MPC_WORKERS specifically; emulate its
        // clamp contract on the parse result.
        assert_eq!("3".trim().parse::<usize>().ok().map(|w| w.max(1)), Some(3));
        assert_eq!("0".trim().parse::<usize>().ok().map(|w| w.max(1)), Some(1));
        assert_eq!("x".trim().parse::<usize>().ok().map(|w| w.max(1)), None);
        std::env::remove_var("MPC_WORKERS_TEST_PROBE");
    }
}
