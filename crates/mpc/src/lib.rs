//! A Massively Parallel Computation (MPC) simulator with exact
//! resource accounting.
//!
//! The paper's model (Section 1.2): a cluster of machines with local
//! memory `s = n^φ` words, communicating in synchronous rounds where
//! no machine sends or receives more than `s` words. Algorithms are
//! judged on **rounds per update batch**, **local memory**, **total
//! memory**, and **per-round communication**. This crate simulates
//! that model on one process:
//!
//! * [`config::MpcConfig`] fixes `n`, `φ`, the word capacity
//!   `s`, and the machine count.
//! * [`cluster::Cluster`] is a real message-passing engine: machines
//!   hold word buffers, exchange serialized words through mailboxes,
//!   and every exchange enforces the per-machine send/receive caps.
//!   [`primitives`] implements genuinely distributed broadcast
//!   trees and a multi-round sample sort on top of it; tests assert
//!   the measured round counts match the charged formulas.
//! * [`context::MpcContext`] is the accounting facade the algorithm
//!   crates use: it charges rounds per primitive invocation using the
//!   standard MPC costs (sorting and converge-cast in `O(1/φ)`
//!   rounds \[GSZ'11\], broadcast trees of fan-out `Θ(s)`), tracks
//!   per-machine and total memory high-water marks, and reports
//!   per-phase round/communication summaries.
//!
//! # Examples
//!
//! ```
//! use mpc_sim::config::MpcConfig;
//! use mpc_sim::context::MpcContext;
//!
//! let cfg = MpcConfig::builder(1024, 0.5).build();
//! let mut ctx = MpcContext::new(cfg);
//! ctx.begin_phase("demo");
//! ctx.broadcast(64); // broadcast 64 words to all machines
//! let report = ctx.end_phase();
//! assert!(report.rounds >= 1);
//! ```

pub mod cluster;
pub mod config;
pub mod context;
pub mod error;
pub mod executor;
pub mod group;
pub mod primitives;
pub mod stats;

pub use config::MpcConfig;
pub use context::{MpcContext, MpcEvent};
pub use error::{MpcError, MpcStreamError};
pub use executor::{kernel_from_env, workers_from_env, KernelOverride, WorkerPool};
pub use group::MachineGroup;
pub use stats::{
    BatchAudit, BatchReport, MaintainerStats, PhaseReport, QueryReport, SessionStats, Stats,
};
