//! Cluster configuration.

/// Configuration of a simulated MPC cluster for an `n`-vertex problem.
///
/// The paper's regime: local memory `s = Θ(n^φ)` **words** (strongly
/// sublinear), machine count chosen so the cluster can hold the
/// algorithm's `Õ(n)` total state. One word = one `u64`.
///
/// Use [`MpcConfig::builder`] to construct.
///
/// # Examples
///
/// ```
/// use mpc_sim::config::MpcConfig;
///
/// let cfg = MpcConfig::builder(4096, 0.5).build();
/// assert_eq!(cfg.n(), 4096);
/// assert_eq!(cfg.local_capacity(), 64); // 4096^0.5
/// assert!(cfg.machines() >= 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MpcConfig {
    n: usize,
    phi: f64,
    local_capacity: u64,
    machines: usize,
    strict: bool,
}

impl MpcConfig {
    /// Starts building a configuration for an `n`-vertex problem with
    /// memory exponent `φ`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < φ < 1` and `n ≥ 2`.
    pub fn builder(n: usize, phi: f64) -> MpcConfigBuilder {
        assert!(n >= 2, "need at least two vertices, got {n}");
        assert!(
            phi > 0.0 && phi < 1.0,
            "memory exponent must satisfy 0 < φ < 1, got {phi}"
        );
        MpcConfigBuilder {
            n,
            phi,
            local_capacity: None,
            machines: None,
            strict: false,
        }
    }

    /// Number of vertices `n` of the problem instance.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The memory exponent `φ`.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Local memory per machine, in words (`s`).
    pub fn local_capacity(&self) -> u64 {
        self.local_capacity
    }

    /// Number of machines in the cluster.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Whether exceeding the local capacity is a hard error (strict)
    /// or only recorded as a violation (permissive, the default —
    /// useful for measuring high-water marks).
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// `⌈log2 n⌉`, the paper's ubiquitous `log n` factor.
    pub fn log2_n(&self) -> u32 {
        (usize::BITS - (self.n.max(2) - 1).leading_zeros()).max(1)
    }

    /// The machine a vertex's state is sharded to (round-robin).
    pub fn machine_of_vertex(&self, v: u32) -> usize {
        v as usize % self.machines
    }

    /// The round budget `O(1/φ)` used by tests as an upper-bound
    /// sanity check: the depth of a fan-out-`Θ(s)` tree over the
    /// cluster (assuming constant-size tree payloads, the paper's
    /// case), plus a constant. For `s = n^φ` and `Õ(n/s)` machines
    /// this is `Θ(1/φ)`.
    pub fn round_budget_per_primitive(&self) -> u64 {
        let fanout = (self.local_capacity / 8).max(2);
        let mut covered: u64 = 1;
        let mut rounds = 0;
        while covered < self.machines as u64 {
            covered = covered.saturating_mul(1 + fanout);
            rounds += 1;
        }
        rounds + 3
    }
}

impl mpc_snapshot::Persist for MpcConfig {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        w.put_f64(self.phi);
        w.put_u64(self.local_capacity);
        w.put_usize(self.machines);
        w.put_bool(self.strict);
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let n = r.take_usize()?;
        let phi = r.take_f64()?;
        let local_capacity = r.take_u64()?;
        let machines = r.take_usize()?;
        let strict = r.take_bool()?;
        if n < 2 || !(phi > 0.0 && phi < 1.0) || local_capacity < 4 || machines < 1 {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "invalid cluster configuration: n={n}, phi={phi}, \
                 s={local_capacity}, machines={machines}"
            )));
        }
        Ok(MpcConfig {
            n,
            phi,
            local_capacity,
            machines,
            strict,
        })
    }
}

/// Constant slack folded into the default machine count on top of the
/// asymptotic `n · log³ n` budget. The asymptotic budget undercounts
/// the sketch bank's constants — `t = ⌈log n⌉ + 6` independent copies
/// of `~8 · log n` words per vertex is ≈ 2.2× the budget at `n = 256`
/// — so a budget-derived cluster could not hold the standing state of
/// a single connectivity instance. 3× covers the constants through
/// the sizes the experiments run at while staying `Θ(n log³ n / s)`
/// machines asymptotically.
pub const STATE_SLACK: u64 = 3;

/// Builder for [`MpcConfig`].
#[derive(Debug, Clone)]
pub struct MpcConfigBuilder {
    n: usize,
    phi: f64,
    local_capacity: Option<u64>,
    machines: Option<usize>,
    strict: bool,
}

impl MpcConfigBuilder {
    /// Overrides the local memory capacity `s` (default `⌈n^φ⌉`).
    pub fn local_capacity(mut self, words: u64) -> Self {
        assert!(words >= 4, "local capacity must be at least 4 words");
        self.local_capacity = Some(words);
        self
    }

    /// Overrides the machine count (default: enough machines for
    /// [`STATE_SLACK`]` · n · ⌈log2 n⌉³` total words — the paper's
    /// `O(n log³ n)` budget with the sketch bank's constants folded
    /// in).
    pub fn machines(mut self, machines: usize) -> Self {
        assert!(machines >= 1, "need at least one machine");
        self.machines = Some(machines);
        self
    }

    /// Makes capacity overruns hard errors instead of recorded
    /// violations.
    pub fn strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> MpcConfig {
        let local_capacity = self
            .local_capacity
            .unwrap_or_else(|| (self.n as f64).powf(self.phi).ceil() as u64)
            .max(4);
        let log_n = (usize::BITS - (self.n.max(2) - 1).leading_zeros()).max(1) as u64;
        let total_budget = STATE_SLACK * self.n as u64 * log_n * log_n * log_n;
        let machines = self
            .machines
            .unwrap_or_else(|| (total_budget.div_ceil(local_capacity)).max(2) as usize);
        MpcConfig {
            n: self.n,
            phi: self.phi,
            local_capacity,
            machines,
            strict: self.strict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_capacity_is_n_to_phi() {
        let cfg = MpcConfig::builder(1 << 12, 0.5).build();
        assert_eq!(cfg.local_capacity(), 64);
        let cfg = MpcConfig::builder(1 << 12, 0.25).build();
        assert_eq!(cfg.local_capacity(), 8);
    }

    #[test]
    fn machine_count_covers_total_budget_with_slack() {
        let cfg = MpcConfig::builder(1024, 0.5).build();
        let log_n = cfg.log2_n() as u64;
        // The sketch-bank constants need headroom beyond the
        // asymptotic budget (ROADMAP, PR 2 audit).
        assert!(cfg.machines() as u64 * cfg.local_capacity() >= STATE_SLACK * 1024 * log_n.pow(3));
    }

    #[test]
    fn default_cluster_holds_a_sketch_bank_at_n_256() {
        // The concrete PR-2 failure case: n = 256, s = 2^16. The
        // standing connectivity state is ≈ 283k words (t = 14 copies
        // × ~79 words/vertex × 256 vertices); the slack-provisioned
        // default must cover it where the bare budget (2 machines)
        // could not.
        let cfg = MpcConfig::builder(256, 0.5).local_capacity(1 << 16).build();
        assert!(cfg.machines() as u64 * cfg.local_capacity() >= 283_000);
    }

    #[test]
    fn overrides_respected() {
        let cfg = MpcConfig::builder(100, 0.3)
            .local_capacity(128)
            .machines(7)
            .strict(true)
            .build();
        assert_eq!(cfg.local_capacity(), 128);
        assert_eq!(cfg.machines(), 7);
        assert!(cfg.strict());
    }

    #[test]
    fn vertex_sharding_is_total() {
        let cfg = MpcConfig::builder(100, 0.5).machines(7).build();
        for v in 0..100u32 {
            assert!(cfg.machine_of_vertex(v) < 7);
        }
    }

    #[test]
    fn log2_n_values() {
        assert_eq!(MpcConfig::builder(2, 0.5).build().log2_n(), 1);
        assert_eq!(MpcConfig::builder(1024, 0.5).build().log2_n(), 10);
        assert_eq!(MpcConfig::builder(1025, 0.5).build().log2_n(), 11);
    }

    #[test]
    #[should_panic(expected = "memory exponent")]
    fn bad_phi_panics() {
        let _ = MpcConfig::builder(100, 1.5);
    }

    #[test]
    fn round_budget_scales_with_inverse_phi() {
        let tight = MpcConfig::builder(1024, 0.2).build();
        let loose = MpcConfig::builder(1024, 0.8).build();
        assert!(tight.round_budget_per_primitive() > loose.round_budget_per_primitive());
    }
}
