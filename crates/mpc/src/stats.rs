//! Round, communication, and memory accounting.

use std::collections::BTreeMap;

/// The kind of MPC primitive a round was charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    /// Synchronous point-to-point exchange.
    Exchange,
    /// Broadcast tree (coordinator → all machines).
    Broadcast,
    /// Converge-cast / aggregation tree (all machines → coordinator).
    Aggregate,
    /// Distributed sort.
    Sort,
    /// Coordinator gather of a small payload.
    Gather,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Op::Exchange => "exchange",
            Op::Broadcast => "broadcast",
            Op::Aggregate => "aggregate",
            Op::Sort => "sort",
            Op::Gather => "gather",
        };
        f.write_str(s)
    }
}

/// Cumulative counters for a run.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Total synchronous rounds charged.
    pub rounds: u64,
    /// Total words moved between machines.
    pub words_communicated: u64,
    /// Maximum words communicated in any single charged round.
    pub peak_round_words: u64,
    /// Rounds per primitive kind.
    pub rounds_by_op: BTreeMap<Op, u64>,
    /// High-water mark of any single machine's local store, in words.
    pub peak_machine_words: u64,
    /// High-water mark of the cluster-wide total store, in words.
    pub peak_total_words: u64,
    /// Capacity violations observed in permissive mode:
    /// `(machine, words, capacity)`.
    pub violations: Vec<(usize, u64, u64)>,
}

impl Stats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Charges `rounds` rounds moving `words` total words to
    /// primitive `op`. The per-round word volume is attributed evenly.
    pub fn charge(&mut self, op: Op, rounds: u64, words: u64) {
        self.rounds += rounds;
        self.words_communicated += words;
        *self.rounds_by_op.entry(op).or_insert(0) += rounds;
        if rounds > 0 {
            self.peak_round_words = self.peak_round_words.max(words.div_ceil(rounds));
        }
    }

    /// Records a memory observation.
    pub fn observe_memory(&mut self, machine_words: u64, total_words: u64) {
        self.peak_machine_words = self.peak_machine_words.max(machine_words);
        self.peak_total_words = self.peak_total_words.max(total_words);
    }

    /// Records a capacity violation (permissive mode).
    pub fn record_violation(&mut self, machine: usize, words: u64, capacity: u64) {
        self.violations.push((machine, words, capacity));
    }

    /// A multi-line human-readable account of the run: totals, the
    /// per-primitive round breakdown, and the memory high-water
    /// marks. Useful at the end of an experiment or example run.
    ///
    /// # Examples
    ///
    /// ```
    /// use mpc_sim::stats::{Op, Stats};
    ///
    /// let mut s = Stats::new();
    /// s.charge(Op::Sort, 4, 100);
    /// s.observe_memory(10, 50);
    /// let text = s.summary();
    /// assert!(text.contains("sort"));
    /// assert!(text.contains("4"));
    /// ```
    pub fn summary(&self) -> String {
        let mut out = format!(
            "rounds: {} total, {} words communicated (peak {} words/round)\n",
            self.rounds, self.words_communicated, self.peak_round_words
        );
        for (op, r) in &self.rounds_by_op {
            out.push_str(&format!("  {op:>9}: {r} rounds\n"));
        }
        out.push_str(&format!(
            "memory: peak {} words/machine, peak {} words total",
            self.peak_machine_words, self.peak_total_words
        ));
        if !self.violations.is_empty() {
            out.push_str(&format!(
                "\ncapacity violations: {} (permissive mode)",
                self.violations.len()
            ));
        }
        out
    }
}

/// Rounds and communication consumed by one phase (one update batch or
/// one query), as reported by
/// [`MpcContext::end_phase`](crate::context::MpcContext::end_phase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseReport {
    /// Label passed to `begin_phase`.
    pub label: String,
    /// Rounds charged during the phase.
    pub rounds: u64,
    /// Words communicated during the phase.
    pub words: u64,
}

impl std::fmt::Display for PhaseReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "phase {}: {} rounds, {} words",
            self.label, self.rounds, self.words
        )
    }
}

/// Rounds, communication, and audit counters one maintainer consumed
/// processing one update batch — the unified per-batch report every
/// implementation of the `Maintain` trait (in `mpc-stream-core`)
/// returns (the quantities Theorem 1.1 speaks about, plus the
/// failure/violation envelope).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// Name of the maintainer that produced this report.
    pub maintainer: &'static str,
    /// Updates in the batch.
    pub updates: usize,
    /// Rounds charged while the batch was processed.
    pub rounds: u64,
    /// Words communicated while the batch was processed.
    pub words: u64,
    /// `ℓ0`-sampler failures the batch absorbed (each retried on an
    /// independent sketch copy).
    pub l0_failures: u64,
    /// Capacity violations recorded during the batch (permissive
    /// mode; strict mode errors instead).
    pub capacity_violations: u64,
}

impl std::fmt::Display for BatchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} updates in {} rounds, {} words ({} l0 fails, {} violations)",
            self.maintainer,
            self.updates,
            self.rounds,
            self.words,
            self.l0_failures,
            self.capacity_violations
        )
    }
}

/// Delta-measures one batch against a context's cumulative counters:
/// [`BatchAudit::begin`] snapshots rounds/words/violations, and
/// [`BatchAudit::finish`] turns the deltas into a [`BatchReport`].
/// Works inside parallel scopes as long as begin/finish bracket a
/// single branch's work.
#[derive(Debug, Clone, Copy)]
pub struct BatchAudit {
    rounds: u64,
    words: u64,
    violations: usize,
}

impl BatchAudit {
    /// Snapshots the context's counters.
    pub fn begin(ctx: &crate::context::MpcContext) -> Self {
        BatchAudit {
            rounds: ctx.stats().rounds,
            words: ctx.stats().words_communicated,
            violations: ctx.stats().violations.len(),
        }
    }

    /// Produces the report for everything charged since `begin`.
    pub fn finish(
        self,
        maintainer: &'static str,
        updates: usize,
        l0_failures: u64,
        ctx: &crate::context::MpcContext,
    ) -> BatchReport {
        BatchReport {
            maintainer,
            updates,
            rounds: ctx.stats().rounds - self.rounds,
            words: ctx.stats().words_communicated - self.words,
            l0_failures,
            capacity_violations: (ctx.stats().violations.len() - self.violations) as u64,
        }
    }
}

/// Rollup of a `Session`'s lifetime consumption across all batches
/// and maintainers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Chunked batches the session fanned out.
    pub batches: u64,
    /// Updates ingested (after normalization).
    pub updates: u64,
    /// Per-maintainer batch applications (`batches ×` registered
    /// maintainers, minus skipped ones).
    pub maintainer_batches: u64,
    /// Session-level rounds: maintainers run in parallel on disjoint
    /// machine groups, so each batch contributes its *maximum*
    /// maintainer's rounds.
    pub rounds: u64,
    /// Total words communicated (all maintainers; it all moves).
    pub words: u64,
    /// `ℓ0`-sampler failures absorbed across all maintainers.
    pub l0_failures: u64,
    /// Capacity violations recorded (permissive mode).
    pub capacity_violations: u64,
    /// Worst single batch's session-level round count.
    pub max_batch_rounds: u64,
}

impl SessionStats {
    /// Folds one maintainer's per-batch report into the rollup
    /// (failure/violation envelope only; rounds and words are
    /// recorded once per chunk via [`SessionStats::record_chunk`]).
    pub fn absorb(&mut self, report: &BatchReport) {
        self.maintainer_batches += 1;
        self.l0_failures += report.l0_failures;
        self.capacity_violations += report.capacity_violations;
    }

    /// Records one fanned-out chunk's session-level consumption.
    pub fn record_chunk(&mut self, updates: usize, rounds: u64, words: u64) {
        self.batches += 1;
        self.updates += updates as u64;
        self.rounds += rounds;
        self.words += words;
        self.max_batch_rounds = self.max_batch_rounds.max(rounds);
    }

    /// A one-paragraph human-readable account of the session.
    pub fn summary(&self) -> String {
        format!(
            "session: {} updates in {} batches across {} maintainer applications\n\
             rounds: {} total ({} worst batch), {} words communicated\n\
             audit: {} l0 fails, {} capacity violations",
            self.updates,
            self.batches,
            self.maintainer_batches,
            self.rounds,
            self.max_batch_rounds,
            self.words,
            self.l0_failures,
            self.capacity_violations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut s = Stats::new();
        s.charge(Op::Broadcast, 3, 30);
        s.charge(Op::Sort, 2, 100);
        assert_eq!(s.rounds, 5);
        assert_eq!(s.words_communicated, 130);
        assert_eq!(s.rounds_by_op[&Op::Broadcast], 3);
        assert_eq!(s.rounds_by_op[&Op::Sort], 2);
        assert_eq!(s.peak_round_words, 50);
    }

    #[test]
    fn memory_high_water_marks() {
        let mut s = Stats::new();
        s.observe_memory(10, 100);
        s.observe_memory(5, 200);
        s.observe_memory(20, 50);
        assert_eq!(s.peak_machine_words, 20);
        assert_eq!(s.peak_total_words, 200);
    }

    #[test]
    fn violations_recorded() {
        let mut s = Stats::new();
        s.record_violation(3, 40, 32);
        assert_eq!(s.violations, vec![(3, 40, 32)]);
    }

    #[test]
    fn phase_report_displays() {
        let r = PhaseReport {
            label: "batch-7".into(),
            rounds: 4,
            words: 99,
        };
        assert_eq!(format!("{r}"), "phase batch-7: 4 rounds, 99 words");
    }

    #[test]
    fn batch_audit_reports_deltas() {
        use crate::config::MpcConfig;
        use crate::context::MpcContext;
        let mut ctx = MpcContext::new(
            MpcConfig::builder(64, 0.5)
                .local_capacity(16)
                .machines(4)
                .build(),
        );
        ctx.exchange(3);
        let audit = BatchAudit::begin(&ctx);
        ctx.exchange(5);
        ctx.exchange(2);
        ctx.alloc(0, 20).unwrap(); // permissive violation
        let r = audit.finish("test", 4, 1, &ctx);
        assert_eq!(r.maintainer, "test");
        assert_eq!(r.updates, 4);
        assert_eq!(r.rounds, 2);
        assert_eq!(r.words, 7);
        assert_eq!(r.l0_failures, 1);
        assert_eq!(r.capacity_violations, 1);
        assert!(r.to_string().contains("test"));
    }

    #[test]
    fn session_stats_rollup() {
        let mut s = SessionStats::default();
        let r = BatchReport {
            maintainer: "a",
            updates: 3,
            rounds: 7,
            words: 10,
            l0_failures: 2,
            capacity_violations: 1,
        };
        s.absorb(&r);
        s.absorb(&r);
        s.record_chunk(3, 9, 25);
        s.record_chunk(2, 4, 5);
        assert_eq!(s.maintainer_batches, 2);
        assert_eq!(s.l0_failures, 4);
        assert_eq!(s.capacity_violations, 2);
        assert_eq!(s.batches, 2);
        assert_eq!(s.updates, 5);
        assert_eq!(s.rounds, 13);
        assert_eq!(s.max_batch_rounds, 9);
        let text = s.summary();
        assert!(text.contains("5 updates"));
        assert!(text.contains("9 worst batch"));
    }

    #[test]
    fn op_display() {
        assert_eq!(format!("{}", Op::Sort), "sort");
        assert_eq!(format!("{}", Op::Gather), "gather");
        assert_eq!(format!("{}", Op::Exchange), "exchange");
        assert_eq!(format!("{}", Op::Broadcast), "broadcast");
        assert_eq!(format!("{}", Op::Aggregate), "aggregate");
    }

    #[test]
    fn summary_reports_all_sections() {
        let mut s = Stats::new();
        s.charge(Op::Broadcast, 2, 10);
        s.charge(Op::Gather, 1, 8);
        s.observe_memory(16, 128);
        let text = s.summary();
        assert!(text.contains("3 total"));
        assert!(text.contains("broadcast: 2 rounds"));
        assert!(text.contains("gather: 1 rounds"));
        assert!(text.contains("peak 16 words/machine"));
        assert!(!text.contains("violations"));
        s.record_violation(0, 20, 16);
        assert!(s.summary().contains("capacity violations: 1"));
    }
}
