//! Round, communication, and memory accounting.

use mpc_snapshot::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use std::collections::BTreeMap;

/// The kind of MPC primitive a round was charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    /// Synchronous point-to-point exchange.
    Exchange,
    /// Broadcast tree (coordinator → all machines).
    Broadcast,
    /// Converge-cast / aggregation tree (all machines → coordinator).
    Aggregate,
    /// Distributed sort.
    Sort,
    /// Coordinator gather of a small payload.
    Gather,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Op::Exchange => "exchange",
            Op::Broadcast => "broadcast",
            Op::Aggregate => "aggregate",
            Op::Sort => "sort",
            Op::Gather => "gather",
        };
        f.write_str(s)
    }
}

/// Cumulative counters for a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total synchronous rounds charged.
    pub rounds: u64,
    /// Total words moved between machines.
    pub words_communicated: u64,
    /// Maximum words communicated in any single charged round.
    pub peak_round_words: u64,
    /// Rounds per primitive kind.
    pub rounds_by_op: BTreeMap<Op, u64>,
    /// High-water mark of any single machine's local store, in words.
    pub peak_machine_words: u64,
    /// High-water mark of the cluster-wide total store, in words.
    pub peak_total_words: u64,
    /// Capacity violations observed in permissive mode:
    /// `(machine, words, capacity)`.
    pub violations: Vec<(usize, u64, u64)>,
}

impl Stats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Charges `rounds` rounds moving `words` total words to
    /// primitive `op`. The per-round word volume is attributed evenly.
    pub fn charge(&mut self, op: Op, rounds: u64, words: u64) {
        self.rounds += rounds;
        self.words_communicated += words;
        *self.rounds_by_op.entry(op).or_insert(0) += rounds;
        if rounds > 0 {
            self.peak_round_words = self.peak_round_words.max(words.div_ceil(rounds));
        }
    }

    /// Records a memory observation.
    pub fn observe_memory(&mut self, machine_words: u64, total_words: u64) {
        self.peak_machine_words = self.peak_machine_words.max(machine_words);
        self.peak_total_words = self.peak_total_words.max(total_words);
    }

    /// Records a capacity violation (permissive mode).
    pub fn record_violation(&mut self, machine: usize, words: u64, capacity: u64) {
        self.violations.push((machine, words, capacity));
    }

    /// A multi-line human-readable account of the run: totals, the
    /// per-primitive round breakdown, and the memory high-water
    /// marks. Useful at the end of an experiment or example run.
    ///
    /// # Examples
    ///
    /// ```
    /// use mpc_sim::stats::{Op, Stats};
    ///
    /// let mut s = Stats::new();
    /// s.charge(Op::Sort, 4, 100);
    /// s.observe_memory(10, 50);
    /// let text = s.summary();
    /// assert!(text.contains("sort"));
    /// assert!(text.contains("4"));
    /// ```
    pub fn summary(&self) -> String {
        let mut out = format!(
            "rounds: {} total, {} words communicated (peak {} words/round)\n",
            self.rounds, self.words_communicated, self.peak_round_words
        );
        for (op, r) in &self.rounds_by_op {
            out.push_str(&format!("  {op:>9}: {r} rounds\n"));
        }
        out.push_str(&format!(
            "memory: peak {} words/machine, peak {} words total",
            self.peak_machine_words, self.peak_total_words
        ));
        if !self.violations.is_empty() {
            out.push_str(&format!(
                "\ncapacity violations: {} (permissive mode)",
                self.violations.len()
            ));
        }
        out
    }
}

/// Rounds and communication consumed by one phase (one update batch or
/// one query), as reported by
/// [`MpcContext::end_phase`](crate::context::MpcContext::end_phase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseReport {
    /// Label passed to `begin_phase`.
    pub label: String,
    /// Rounds charged during the phase.
    pub rounds: u64,
    /// Words communicated during the phase.
    pub words: u64,
}

impl std::fmt::Display for PhaseReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "phase {}: {} rounds, {} words",
            self.label, self.rounds, self.words
        )
    }
}

/// Rounds, communication, and audit counters one maintainer consumed
/// processing one update batch — the unified per-batch report every
/// implementation of the `Maintain` trait (in `mpc-stream-core`)
/// returns (the quantities Theorem 1.1 speaks about, plus the
/// failure/violation envelope).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// Name of the maintainer that produced this report.
    pub maintainer: &'static str,
    /// Updates in the batch.
    pub updates: usize,
    /// Rounds charged while the batch was processed.
    pub rounds: u64,
    /// Words communicated while the batch was processed.
    pub words: u64,
    /// `ℓ0`-sampler failures the batch absorbed (each retried on an
    /// independent sketch copy).
    pub l0_failures: u64,
    /// Capacity violations recorded during the batch (permissive
    /// mode; strict mode errors instead).
    pub capacity_violations: u64,
}

impl std::fmt::Display for BatchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} updates in {} rounds, {} words ({} l0 fails, {} violations)",
            self.maintainer,
            self.updates,
            self.rounds,
            self.words,
            self.l0_failures,
            self.capacity_violations
        )
    }
}

/// Delta-measures one batch against a context's cumulative counters:
/// [`BatchAudit::begin`] snapshots rounds/words/violations, and
/// [`BatchAudit::finish`] turns the deltas into a [`BatchReport`].
/// Works inside parallel scopes as long as begin/finish bracket a
/// single branch's work.
#[derive(Debug, Clone, Copy)]
pub struct BatchAudit {
    rounds: u64,
    words: u64,
    violations: usize,
}

impl BatchAudit {
    /// Snapshots the context's counters.
    pub fn begin(ctx: &crate::context::MpcContext) -> Self {
        BatchAudit {
            rounds: ctx.stats().rounds,
            words: ctx.stats().words_communicated,
            violations: ctx.stats().violations.len(),
        }
    }

    /// Produces the report for everything charged since `begin`.
    pub fn finish(
        self,
        maintainer: &'static str,
        updates: usize,
        l0_failures: u64,
        ctx: &crate::context::MpcContext,
    ) -> BatchReport {
        BatchReport {
            maintainer,
            updates,
            rounds: ctx.stats().rounds - self.rounds,
            words: ctx.stats().words_communicated - self.words,
            l0_failures,
            capacity_violations: (ctx.stats().violations.len() - self.violations) as u64,
        }
    }
}

/// Rounds and communication one maintainer consumed answering one
/// typed query through the session's query plane — the query-side
/// sibling of [`BatchReport`]. Unlike the inherent "peek" accessors,
/// every `Session::ask` answer is charged against the cluster, and
/// this report is the receipt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReport {
    /// Name of the maintainer that answered.
    pub maintainer: &'static str,
    /// The rendered query (e.g. `connected(0, 2)`).
    pub query: String,
    /// Rounds charged while answering.
    pub rounds: u64,
    /// Words communicated while answering.
    pub words: u64,
}

impl std::fmt::Display for QueryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} answered in {} rounds, {} words",
            self.maintainer, self.query, self.rounds, self.words
        )
    }
}

/// One maintainer's slice of a `Session`'s lifetime consumption:
/// ingest and query costs are tracked separately, so the round
/// asymmetry the paper measures (free maintained answers vs
/// recompute-on-read baselines) is visible per structure.
#[derive(Debug, Clone)]
pub struct MaintainerStats {
    /// The maintainer's stable name.
    pub name: &'static str,
    /// Bytes this maintainer's state section occupied in the most
    /// recent `Session::checkpoint` (0 until one is taken). Host-side
    /// observability, not stream state: a session that never
    /// checkpoints and one that checkpoints along the way must stay
    /// `==`, so equality excludes this field.
    pub checkpoint_bytes: u64,
    /// Batches this maintainer ingested.
    pub batches: u64,
    /// Rounds charged to this maintainer's batch ingestion
    /// (serial-equivalent; the session-level rollup max-composes).
    pub rounds: u64,
    /// Words this maintainer's ingestion communicated.
    pub words: u64,
    /// Queries answered through the query plane.
    pub queries: u64,
    /// Rounds charged to this maintainer's query answers.
    pub query_rounds: u64,
    /// Words this maintainer's query answers communicated.
    pub query_words: u64,
    /// `ℓ0`-sampler failures absorbed.
    pub l0_failures: u64,
    /// Capacity violations attributed to this maintainer (permissive
    /// mode; strict mode errors instead).
    pub capacity_violations: u64,
    /// Standing state at the last audit, in words.
    pub state_words: u64,
    /// High-water mark of the standing state, in words.
    pub peak_state_words: u64,
}

impl MaintainerStats {
    /// Creates a zeroed entry for `name`.
    pub fn new(name: &'static str) -> Self {
        MaintainerStats {
            name,
            checkpoint_bytes: 0,
            batches: 0,
            rounds: 0,
            words: 0,
            queries: 0,
            query_rounds: 0,
            query_words: 0,
            l0_failures: 0,
            capacity_violations: 0,
            state_words: 0,
            peak_state_words: 0,
        }
    }
}

// Equality deliberately ignores `checkpoint_bytes`: it records what the
// *host* did (how large the last snapshot section was), not what the
// *stream* did, and the crash-recovery equivalence tests compare the
// stats of a checkpointing run against an uninterrupted one.
impl PartialEq for MaintainerStats {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.batches == other.batches
            && self.rounds == other.rounds
            && self.words == other.words
            && self.queries == other.queries
            && self.query_rounds == other.query_rounds
            && self.query_words == other.query_words
            && self.l0_failures == other.l0_failures
            && self.capacity_violations == other.capacity_violations
            && self.state_words == other.state_words
            && self.peak_state_words == other.peak_state_words
    }
}

impl Eq for MaintainerStats {}

/// Rollup of a `Session`'s lifetime consumption across all batches
/// and maintainers, including the per-maintainer breakdown
/// ([`SessionStats::per_maintainer`], indexed by registration order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Chunked batches the session fanned out.
    pub batches: u64,
    /// Updates ingested (after normalization).
    pub updates: u64,
    /// Per-maintainer batch applications (`batches ×` registered
    /// maintainers, minus skipped ones).
    pub maintainer_batches: u64,
    /// Session-level rounds: maintainers run in parallel on disjoint
    /// machine groups, so each batch contributes its *maximum*
    /// maintainer's rounds.
    pub rounds: u64,
    /// Total words communicated (all maintainers; it all moves).
    pub words: u64,
    /// `ℓ0`-sampler failures absorbed across all maintainers.
    pub l0_failures: u64,
    /// Capacity violations recorded (permissive mode).
    pub capacity_violations: u64,
    /// Worst single batch's session-level round count.
    pub max_batch_rounds: u64,
    /// Queries answered through the query plane (all maintainers).
    pub queries: u64,
    /// Session-level query rounds (`ask_all` fan-outs max-compose,
    /// like batches).
    pub query_rounds: u64,
    /// Words communicated answering queries.
    pub query_words: u64,
    /// Per-maintainer breakdown, indexed by registration order
    /// (`MaintainerId`).
    pub per_maintainer: Vec<MaintainerStats>,
}

impl SessionStats {
    /// Opens a per-maintainer entry; called once per registration, in
    /// registration order.
    pub fn register_maintainer(&mut self, name: &'static str) {
        self.per_maintainer.push(MaintainerStats::new(name));
    }

    /// Folds one maintainer's per-batch report into the rollup
    /// (failure/violation envelope plus the per-maintainer breakdown;
    /// session-level rounds and words are recorded once per chunk via
    /// [`SessionStats::record_chunk`]).
    pub fn absorb(&mut self, id: usize, report: &BatchReport) {
        self.maintainer_batches += 1;
        self.l0_failures += report.l0_failures;
        self.capacity_violations += report.capacity_violations;
        if let Some(m) = self.per_maintainer.get_mut(id) {
            m.batches += 1;
            m.rounds += report.rounds;
            m.words += report.words;
            m.l0_failures += report.l0_failures;
            m.capacity_violations += report.capacity_violations;
        }
    }

    /// Folds one maintainer's query receipt into the rollup. The
    /// session-level `query_rounds` is advanced by the caller (via
    /// [`SessionStats::record_query_phase`]) so `ask_all` fan-outs
    /// max-compose.
    pub fn absorb_query(&mut self, id: usize, report: &QueryReport) {
        self.queries += 1;
        if let Some(m) = self.per_maintainer.get_mut(id) {
            m.queries += 1;
            m.query_rounds += report.rounds;
            m.query_words += report.words;
        }
    }

    /// Records one query phase's session-level consumption (for an
    /// `ask_all`, the max-composed rounds of the fan-out).
    pub fn record_query_phase(&mut self, rounds: u64, words: u64) {
        self.query_rounds += rounds;
        self.query_words += words;
    }

    /// Records one maintainer's standing state as observed by the
    /// capacity audit.
    pub fn observe_state(&mut self, id: usize, words: u64) {
        if let Some(m) = self.per_maintainer.get_mut(id) {
            m.state_words = words;
            m.peak_state_words = m.peak_state_words.max(words);
        }
    }

    /// Records a capacity violation attributed to one maintainer's
    /// machine group (permissive mode).
    pub fn record_group_violation(&mut self, id: usize) {
        self.capacity_violations += 1;
        if let Some(m) = self.per_maintainer.get_mut(id) {
            m.capacity_violations += 1;
        }
    }

    /// Records one fanned-out chunk's session-level consumption.
    pub fn record_chunk(&mut self, updates: usize, rounds: u64, words: u64) {
        self.batches += 1;
        self.updates += updates as u64;
        self.rounds += rounds;
        self.words += words;
        self.max_batch_rounds = self.max_batch_rounds.max(rounds);
    }

    /// A human-readable account of the session, including the
    /// per-maintainer ingest/query/state breakdown.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "session: {} updates in {} batches across {} maintainer applications\n\
             rounds: {} total ({} worst batch), {} words communicated\n\
             queries: {} answered in {} rounds, {} words\n\
             audit: {} l0 fails, {} capacity violations",
            self.updates,
            self.batches,
            self.maintainer_batches,
            self.rounds,
            self.max_batch_rounds,
            self.words,
            self.queries,
            self.query_rounds,
            self.query_words,
            self.l0_failures,
            self.capacity_violations
        );
        for m in &self.per_maintainer {
            out.push_str(&format!(
                "\n  {:>28}: {} batches ({} rounds, {} words) | {} queries \
                 ({} rounds, {} words) | state {} words (peak {}) | {} l0 fails, {} violations",
                m.name,
                m.batches,
                m.rounds,
                m.words,
                m.queries,
                m.query_rounds,
                m.query_words,
                m.state_words,
                m.peak_state_words,
                m.l0_failures,
                m.capacity_violations
            ));
            if m.checkpoint_bytes > 0 {
                out.push_str(&format!(" | ckpt {} bytes", m.checkpoint_bytes));
            }
        }
        out
    }
}

// ----- persistence ----------------------------------------------------
//
// Accounting state travels with a checkpoint so a restored session
// resumes with the exact round/word/memory ledger the crashed one had.
// `MaintainerStats::name` is a `&'static str` a decoder cannot
// fabricate, so it is *not* serialized: `Session::restore` re-binds
// each entry's name from the restored maintainer's `Maintain::name()`.

impl Persist for Op {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u8(match self {
            Op::Exchange => 0,
            Op::Broadcast => 1,
            Op::Aggregate => 2,
            Op::Sort => 3,
            Op::Gather => 4,
        });
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.take_u8()? {
            0 => Ok(Op::Exchange),
            1 => Ok(Op::Broadcast),
            2 => Ok(Op::Aggregate),
            3 => Ok(Op::Sort),
            4 => Ok(Op::Gather),
            t => Err(SnapshotError::Corrupt(format!("invalid Op tag {t}"))),
        }
    }
}

impl Persist for Stats {
    fn save(&self, w: &mut SnapshotWriter) {
        self.rounds.save(w);
        self.words_communicated.save(w);
        self.peak_round_words.save(w);
        self.rounds_by_op.save(w);
        self.peak_machine_words.save(w);
        self.peak_total_words.save(w);
        self.violations.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Stats {
            rounds: Persist::load(r)?,
            words_communicated: Persist::load(r)?,
            peak_round_words: Persist::load(r)?,
            rounds_by_op: Persist::load(r)?,
            peak_machine_words: Persist::load(r)?,
            peak_total_words: Persist::load(r)?,
            violations: Persist::load(r)?,
        })
    }
}

impl Persist for MaintainerStats {
    fn save(&self, w: &mut SnapshotWriter) {
        self.batches.save(w);
        self.rounds.save(w);
        self.words.save(w);
        self.queries.save(w);
        self.query_rounds.save(w);
        self.query_words.save(w);
        self.l0_failures.save(w);
        self.capacity_violations.save(w);
        self.state_words.save(w);
        self.peak_state_words.save(w);
        self.checkpoint_bytes.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(MaintainerStats {
            name: "",
            batches: Persist::load(r)?,
            rounds: Persist::load(r)?,
            words: Persist::load(r)?,
            queries: Persist::load(r)?,
            query_rounds: Persist::load(r)?,
            query_words: Persist::load(r)?,
            l0_failures: Persist::load(r)?,
            capacity_violations: Persist::load(r)?,
            state_words: Persist::load(r)?,
            peak_state_words: Persist::load(r)?,
            checkpoint_bytes: Persist::load(r)?,
        })
    }
}

impl Persist for SessionStats {
    fn save(&self, w: &mut SnapshotWriter) {
        self.batches.save(w);
        self.updates.save(w);
        self.maintainer_batches.save(w);
        self.rounds.save(w);
        self.words.save(w);
        self.l0_failures.save(w);
        self.capacity_violations.save(w);
        self.max_batch_rounds.save(w);
        self.queries.save(w);
        self.query_rounds.save(w);
        self.query_words.save(w);
        self.per_maintainer.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SessionStats {
            batches: Persist::load(r)?,
            updates: Persist::load(r)?,
            maintainer_batches: Persist::load(r)?,
            rounds: Persist::load(r)?,
            words: Persist::load(r)?,
            l0_failures: Persist::load(r)?,
            capacity_violations: Persist::load(r)?,
            max_batch_rounds: Persist::load(r)?,
            queries: Persist::load(r)?,
            query_rounds: Persist::load(r)?,
            query_words: Persist::load(r)?,
            per_maintainer: Persist::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut s = Stats::new();
        s.charge(Op::Broadcast, 3, 30);
        s.charge(Op::Sort, 2, 100);
        assert_eq!(s.rounds, 5);
        assert_eq!(s.words_communicated, 130);
        assert_eq!(s.rounds_by_op[&Op::Broadcast], 3);
        assert_eq!(s.rounds_by_op[&Op::Sort], 2);
        assert_eq!(s.peak_round_words, 50);
    }

    #[test]
    fn memory_high_water_marks() {
        let mut s = Stats::new();
        s.observe_memory(10, 100);
        s.observe_memory(5, 200);
        s.observe_memory(20, 50);
        assert_eq!(s.peak_machine_words, 20);
        assert_eq!(s.peak_total_words, 200);
    }

    #[test]
    fn violations_recorded() {
        let mut s = Stats::new();
        s.record_violation(3, 40, 32);
        assert_eq!(s.violations, vec![(3, 40, 32)]);
    }

    #[test]
    fn phase_report_displays() {
        let r = PhaseReport {
            label: "batch-7".into(),
            rounds: 4,
            words: 99,
        };
        assert_eq!(format!("{r}"), "phase batch-7: 4 rounds, 99 words");
    }

    #[test]
    fn batch_audit_reports_deltas() {
        use crate::config::MpcConfig;
        use crate::context::MpcContext;
        let mut ctx = MpcContext::new(
            MpcConfig::builder(64, 0.5)
                .local_capacity(16)
                .machines(4)
                .build(),
        );
        ctx.exchange(3);
        let audit = BatchAudit::begin(&ctx);
        ctx.exchange(5);
        ctx.exchange(2);
        ctx.alloc(0, 20).unwrap(); // permissive violation
        let r = audit.finish("test", 4, 1, &ctx);
        assert_eq!(r.maintainer, "test");
        assert_eq!(r.updates, 4);
        assert_eq!(r.rounds, 2);
        assert_eq!(r.words, 7);
        assert_eq!(r.l0_failures, 1);
        assert_eq!(r.capacity_violations, 1);
        assert!(r.to_string().contains("test"));
    }

    #[test]
    fn session_stats_rollup() {
        let mut s = SessionStats::default();
        s.register_maintainer("a");
        let r = BatchReport {
            maintainer: "a",
            updates: 3,
            rounds: 7,
            words: 10,
            l0_failures: 2,
            capacity_violations: 1,
        };
        s.absorb(0, &r);
        s.absorb(0, &r);
        s.record_chunk(3, 9, 25);
        s.record_chunk(2, 4, 5);
        assert_eq!(s.maintainer_batches, 2);
        assert_eq!(s.l0_failures, 4);
        assert_eq!(s.capacity_violations, 2);
        assert_eq!(s.batches, 2);
        assert_eq!(s.updates, 5);
        assert_eq!(s.rounds, 13);
        assert_eq!(s.max_batch_rounds, 9);
        let a = &s.per_maintainer[0];
        assert_eq!((a.batches, a.rounds, a.words), (2, 14, 20));
        assert_eq!((a.l0_failures, a.capacity_violations), (4, 2));
        let text = s.summary();
        assert!(text.contains("5 updates"));
        assert!(text.contains("9 worst batch"));
        assert!(text.contains("a: 2 batches"));
    }

    #[test]
    fn query_reports_roll_into_the_breakdown() {
        let mut s = SessionStats::default();
        s.register_maintainer("conn");
        s.register_maintainer("agm");
        let free = QueryReport {
            maintainer: "conn",
            query: "connected(0, 1)".into(),
            rounds: 1,
            words: 2,
        };
        let paid = QueryReport {
            maintainer: "agm",
            query: "connected(0, 1)".into(),
            rounds: 9,
            words: 40,
        };
        s.absorb_query(0, &free);
        s.absorb_query(1, &paid);
        // The fan-out max-composes at the session level.
        s.record_query_phase(9, 42);
        assert_eq!(s.queries, 2);
        assert_eq!(s.query_rounds, 9);
        assert_eq!(s.per_maintainer[0].query_rounds, 1);
        assert_eq!(s.per_maintainer[1].query_rounds, 9);
        assert!(paid.to_string().contains("connected(0, 1)"));
        s.observe_state(1, 77);
        s.observe_state(1, 50);
        assert_eq!(s.per_maintainer[1].state_words, 50);
        assert_eq!(s.per_maintainer[1].peak_state_words, 77);
        s.record_group_violation(1);
        assert_eq!(s.capacity_violations, 1);
        assert_eq!(s.per_maintainer[1].capacity_violations, 1);
        assert!(s.summary().contains("agm"));
    }

    #[test]
    fn op_display() {
        assert_eq!(format!("{}", Op::Sort), "sort");
        assert_eq!(format!("{}", Op::Gather), "gather");
        assert_eq!(format!("{}", Op::Exchange), "exchange");
        assert_eq!(format!("{}", Op::Broadcast), "broadcast");
        assert_eq!(format!("{}", Op::Aggregate), "aggregate");
    }

    #[test]
    fn summary_reports_all_sections() {
        let mut s = Stats::new();
        s.charge(Op::Broadcast, 2, 10);
        s.charge(Op::Gather, 1, 8);
        s.observe_memory(16, 128);
        let text = s.summary();
        assert!(text.contains("3 total"));
        assert!(text.contains("broadcast: 2 rounds"));
        assert!(text.contains("gather: 1 rounds"));
        assert!(text.contains("peak 16 words/machine"));
        assert!(!text.contains("violations"));
        s.record_violation(0, 20, 16);
        assert!(s.summary().contains("capacity violations: 1"));
    }
}
