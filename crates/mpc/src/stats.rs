//! Round, communication, and memory accounting.

use std::collections::BTreeMap;

/// The kind of MPC primitive a round was charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    /// Synchronous point-to-point exchange.
    Exchange,
    /// Broadcast tree (coordinator → all machines).
    Broadcast,
    /// Converge-cast / aggregation tree (all machines → coordinator).
    Aggregate,
    /// Distributed sort.
    Sort,
    /// Coordinator gather of a small payload.
    Gather,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Op::Exchange => "exchange",
            Op::Broadcast => "broadcast",
            Op::Aggregate => "aggregate",
            Op::Sort => "sort",
            Op::Gather => "gather",
        };
        f.write_str(s)
    }
}

/// Cumulative counters for a run.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Total synchronous rounds charged.
    pub rounds: u64,
    /// Total words moved between machines.
    pub words_communicated: u64,
    /// Maximum words communicated in any single charged round.
    pub peak_round_words: u64,
    /// Rounds per primitive kind.
    pub rounds_by_op: BTreeMap<Op, u64>,
    /// High-water mark of any single machine's local store, in words.
    pub peak_machine_words: u64,
    /// High-water mark of the cluster-wide total store, in words.
    pub peak_total_words: u64,
    /// Capacity violations observed in permissive mode:
    /// `(machine, words, capacity)`.
    pub violations: Vec<(usize, u64, u64)>,
}

impl Stats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Charges `rounds` rounds moving `words` total words to
    /// primitive `op`. The per-round word volume is attributed evenly.
    pub fn charge(&mut self, op: Op, rounds: u64, words: u64) {
        self.rounds += rounds;
        self.words_communicated += words;
        *self.rounds_by_op.entry(op).or_insert(0) += rounds;
        if rounds > 0 {
            self.peak_round_words = self.peak_round_words.max(words.div_ceil(rounds));
        }
    }

    /// Records a memory observation.
    pub fn observe_memory(&mut self, machine_words: u64, total_words: u64) {
        self.peak_machine_words = self.peak_machine_words.max(machine_words);
        self.peak_total_words = self.peak_total_words.max(total_words);
    }

    /// Records a capacity violation (permissive mode).
    pub fn record_violation(&mut self, machine: usize, words: u64, capacity: u64) {
        self.violations.push((machine, words, capacity));
    }

    /// A multi-line human-readable account of the run: totals, the
    /// per-primitive round breakdown, and the memory high-water
    /// marks. Useful at the end of an experiment or example run.
    ///
    /// # Examples
    ///
    /// ```
    /// use mpc_sim::stats::{Op, Stats};
    ///
    /// let mut s = Stats::new();
    /// s.charge(Op::Sort, 4, 100);
    /// s.observe_memory(10, 50);
    /// let text = s.summary();
    /// assert!(text.contains("sort"));
    /// assert!(text.contains("4"));
    /// ```
    pub fn summary(&self) -> String {
        let mut out = format!(
            "rounds: {} total, {} words communicated (peak {} words/round)\n",
            self.rounds, self.words_communicated, self.peak_round_words
        );
        for (op, r) in &self.rounds_by_op {
            out.push_str(&format!("  {op:>9}: {r} rounds\n"));
        }
        out.push_str(&format!(
            "memory: peak {} words/machine, peak {} words total",
            self.peak_machine_words, self.peak_total_words
        ));
        if !self.violations.is_empty() {
            out.push_str(&format!(
                "\ncapacity violations: {} (permissive mode)",
                self.violations.len()
            ));
        }
        out
    }
}

/// Rounds and communication consumed by one phase (one update batch or
/// one query), as reported by
/// [`MpcContext::end_phase`](crate::context::MpcContext::end_phase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseReport {
    /// Label passed to `begin_phase`.
    pub label: String,
    /// Rounds charged during the phase.
    pub rounds: u64,
    /// Words communicated during the phase.
    pub words: u64,
}

impl std::fmt::Display for PhaseReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "phase {}: {} rounds, {} words",
            self.label, self.rounds, self.words
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut s = Stats::new();
        s.charge(Op::Broadcast, 3, 30);
        s.charge(Op::Sort, 2, 100);
        assert_eq!(s.rounds, 5);
        assert_eq!(s.words_communicated, 130);
        assert_eq!(s.rounds_by_op[&Op::Broadcast], 3);
        assert_eq!(s.rounds_by_op[&Op::Sort], 2);
        assert_eq!(s.peak_round_words, 50);
    }

    #[test]
    fn memory_high_water_marks() {
        let mut s = Stats::new();
        s.observe_memory(10, 100);
        s.observe_memory(5, 200);
        s.observe_memory(20, 50);
        assert_eq!(s.peak_machine_words, 20);
        assert_eq!(s.peak_total_words, 200);
    }

    #[test]
    fn violations_recorded() {
        let mut s = Stats::new();
        s.record_violation(3, 40, 32);
        assert_eq!(s.violations, vec![(3, 40, 32)]);
    }

    #[test]
    fn phase_report_displays() {
        let r = PhaseReport {
            label: "batch-7".into(),
            rounds: 4,
            words: 99,
        };
        assert_eq!(format!("{r}"), "phase batch-7: 4 rounds, 99 words");
    }

    #[test]
    fn op_display() {
        assert_eq!(format!("{}", Op::Sort), "sort");
        assert_eq!(format!("{}", Op::Gather), "gather");
        assert_eq!(format!("{}", Op::Exchange), "exchange");
        assert_eq!(format!("{}", Op::Broadcast), "broadcast");
        assert_eq!(format!("{}", Op::Aggregate), "aggregate");
    }

    #[test]
    fn summary_reports_all_sections() {
        let mut s = Stats::new();
        s.charge(Op::Broadcast, 2, 10);
        s.charge(Op::Gather, 1, 8);
        s.observe_memory(16, 128);
        let text = s.summary();
        assert!(text.contains("3 total"));
        assert!(text.contains("broadcast: 2 rounds"));
        assert!(text.contains("gather: 1 rounds"));
        assert!(text.contains("peak 16 words/machine"));
        assert!(!text.contains("violations"));
        s.record_violation(0, 20, 16);
        assert!(s.summary().contains("capacity violations: 1"));
    }
}
