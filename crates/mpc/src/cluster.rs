//! A real synchronous message-passing engine.
//!
//! [`Cluster`] gives every machine a word buffer (its local store) and
//! a mailbox. One [`Cluster::exchange`] call is one synchronous MPC
//! round: every machine reads its incoming messages, mutates its local
//! buffer, and emits outgoing messages; the engine enforces the model
//! constraints — per-round send and receive volume of any machine is
//! at most the local capacity `s` — and counts the round.
//!
//! The [`primitives`](crate::primitives) module builds genuinely
//! distributed broadcast trees and a sample sort on this engine; their
//! tests pin the measured round counts to the formulas that
//! [`MpcContext`](crate::context::MpcContext) charges.

use crate::error::MpcError;

/// A message addressed to another machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg {
    /// Destination machine.
    pub dest: usize,
    /// Payload words.
    pub words: Vec<u64>,
}

impl Msg {
    /// Creates a message.
    pub fn new(dest: usize, words: Vec<u64>) -> Self {
        Msg { dest, words }
    }
}

/// A simulated cluster: per-machine word buffers, mailboxes, and a
/// round counter.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use mpc_sim::cluster::{Cluster, Msg};
///
/// let mut c = Cluster::new(2, 16);
/// // Machine 0 sends one word to machine 1.
/// c.exchange(|id, _buf, _inbox| {
///     if id == 0 { vec![Msg::new(1, vec![42])] } else { vec![] }
/// })?;
/// // Machine 1 stores what it received.
/// c.exchange(|id, buf, inbox| {
///     if id == 1 {
///         buf.extend(inbox.into_iter().flatten());
///     }
///     vec![]
/// })?;
/// assert_eq!(c.buffer(1), &[42]);
/// assert_eq!(c.rounds(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    capacity: u64,
    buffers: Vec<Vec<u64>>,
    mailboxes: Vec<Vec<Vec<u64>>>,
    rounds: u64,
    words_communicated: u64,
}

impl Cluster {
    /// Creates a cluster of `machines` machines with local capacity
    /// `capacity` words each.
    ///
    /// # Panics
    ///
    /// Panics if `machines == 0`.
    pub fn new(machines: usize, capacity: u64) -> Self {
        assert!(machines > 0, "cluster needs at least one machine");
        Cluster {
            capacity,
            buffers: vec![Vec::new(); machines],
            mailboxes: vec![Vec::new(); machines],
            rounds: 0,
            words_communicated: 0,
        }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.buffers.len()
    }

    /// Local capacity in words.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total words moved between machines so far.
    pub fn words_communicated(&self) -> u64 {
        self.words_communicated
    }

    /// A machine's local buffer.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn buffer(&self, m: usize) -> &[u64] {
        &self.buffers[m]
    }

    /// Mutable access to a machine's local buffer (for initial data
    /// placement; does not consume rounds).
    pub fn buffer_mut(&mut self, m: usize) -> &mut Vec<u64> {
        &mut self.buffers[m]
    }

    /// Runs one synchronous round. For each machine, `step` receives
    /// the machine id, its local buffer, and the messages delivered
    /// this round, and returns outgoing messages (delivered next
    /// round).
    ///
    /// # Errors
    ///
    /// * [`MpcError::SendCapExceeded`] if a machine emits more than
    ///   `s` words.
    /// * [`MpcError::ReceiveCapExceeded`] if more than `s` words are
    ///   addressed to one machine.
    /// * [`MpcError::NoSuchMachine`] for an invalid destination.
    ///
    /// On error the round still counts (the model "aborts" the round)
    /// but no messages are delivered.
    pub fn exchange<F>(&mut self, mut step: F) -> Result<(), MpcError>
    where
        F: FnMut(usize, &mut Vec<u64>, Vec<Vec<u64>>) -> Vec<Msg>,
    {
        self.rounds += 1;
        let machines = self.machines();
        let mut outgoing: Vec<Msg> = Vec::new();
        for id in 0..machines {
            let inbox = std::mem::take(&mut self.mailboxes[id]);
            let msgs = step(id, &mut self.buffers[id], inbox);
            let sent: u64 = msgs.iter().map(|m| m.words.len() as u64).sum();
            if sent > self.capacity {
                return Err(MpcError::SendCapExceeded {
                    machine: id,
                    attempted: sent,
                    capacity: self.capacity,
                });
            }
            outgoing.extend(msgs);
        }
        // Route, checking receive caps.
        let mut incoming_words = vec![0u64; machines];
        for m in &outgoing {
            if m.dest >= machines {
                return Err(MpcError::NoSuchMachine {
                    machine: m.dest,
                    cluster: machines,
                });
            }
            incoming_words[m.dest] += m.words.len() as u64;
        }
        if let Some((machine, &attempted)) = incoming_words
            .iter()
            .enumerate()
            .find(|(_, &w)| w > self.capacity)
        {
            return Err(MpcError::ReceiveCapExceeded {
                machine,
                attempted,
                capacity: self.capacity,
            });
        }
        for m in outgoing {
            self.words_communicated += m.words.len() as u64;
            self.mailboxes[m.dest].push(m.words);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let mut c = Cluster::new(2, 8);
        c.exchange(|id, _b, _in| {
            if id == 0 {
                vec![Msg::new(1, vec![7])]
            } else {
                vec![]
            }
        })
        .unwrap();
        c.exchange(|id, _b, inbox| {
            if id == 1 {
                assert_eq!(inbox, vec![vec![7]]);
                vec![Msg::new(0, vec![8])]
            } else {
                assert!(inbox.is_empty());
                vec![]
            }
        })
        .unwrap();
        c.exchange(|id, buf, inbox| {
            if id == 0 {
                buf.extend(inbox.into_iter().flatten());
            }
            vec![]
        })
        .unwrap();
        assert_eq!(c.buffer(0), &[8]);
        assert_eq!(c.rounds(), 3);
        assert_eq!(c.words_communicated(), 2);
    }

    #[test]
    fn send_cap_enforced() {
        let mut c = Cluster::new(2, 4);
        let err = c
            .exchange(|id, _b, _in| {
                if id == 0 {
                    vec![Msg::new(1, vec![0; 5])]
                } else {
                    vec![]
                }
            })
            .unwrap_err();
        assert!(matches!(err, MpcError::SendCapExceeded { machine: 0, .. }));
    }

    #[test]
    fn receive_cap_enforced() {
        let mut c = Cluster::new(3, 4);
        // Machines 0 and 1 each send 3 words to machine 2: 6 > 4.
        let err = c
            .exchange(|id, _b, _in| {
                if id < 2 {
                    vec![Msg::new(2, vec![0; 3])]
                } else {
                    vec![]
                }
            })
            .unwrap_err();
        assert!(matches!(
            err,
            MpcError::ReceiveCapExceeded { machine: 2, .. }
        ));
    }

    #[test]
    fn bad_destination_rejected() {
        let mut c = Cluster::new(2, 4);
        let err = c
            .exchange(|id, _b, _in| {
                if id == 0 {
                    vec![Msg::new(9, vec![1])]
                } else {
                    vec![]
                }
            })
            .unwrap_err();
        assert!(matches!(err, MpcError::NoSuchMachine { machine: 9, .. }));
    }

    #[test]
    fn messages_are_delivered_next_round_not_same_round() {
        let mut c = Cluster::new(2, 8);
        c.exchange(|id, _b, inbox| {
            assert!(inbox.is_empty(), "round 1 has no mail");
            if id == 0 {
                vec![Msg::new(1, vec![1])]
            } else {
                vec![]
            }
        })
        .unwrap();
        let mut saw = false;
        c.exchange(|id, _b, inbox| {
            if id == 1 && !inbox.is_empty() {
                saw = true;
            }
            vec![]
        })
        .unwrap();
        assert!(saw);
    }
}
