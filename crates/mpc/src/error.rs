//! Error types for the MPC simulator.

use crate::group::MachineGroup;

/// Errors raised by the simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcError {
    /// A machine's local store exceeded the capacity `s` (strict mode
    /// only; permissive mode records a violation instead).
    LocalMemoryExceeded {
        /// Machine that overflowed.
        machine: usize,
        /// Words the machine would hold.
        used: u64,
        /// The capacity `s`.
        capacity: u64,
    },
    /// A machine tried to send more words in one round than its
    /// capacity allows.
    SendCapExceeded {
        /// Sending machine.
        machine: usize,
        /// Words it attempted to send this round.
        attempted: u64,
        /// The capacity `s`.
        capacity: u64,
    },
    /// A machine would receive more words in one round than its
    /// capacity allows.
    ReceiveCapExceeded {
        /// Receiving machine.
        machine: usize,
        /// Words addressed to it this round.
        attempted: u64,
        /// The capacity `s`.
        capacity: u64,
    },
    /// A coordinator gather was attempted whose payload cannot fit in
    /// one machine — the algorithm's batch-size precondition was
    /// violated.
    GatherTooLarge {
        /// Words gathered.
        words: u64,
        /// The capacity `s`.
        capacity: u64,
    },
    /// A message was addressed to a machine outside the cluster.
    NoSuchMachine {
        /// The invalid destination.
        machine: usize,
        /// Cluster size.
        cluster: usize,
    },
    /// A maintainer's standing state exceeds its machine group's
    /// capacity (`group machines × s`) — the cluster slice assigned
    /// to that structure is under-provisioned for it.
    ClusterMemoryExceeded {
        /// Name of the maintainer whose state overran its group.
        maintainer: String,
        /// The machine group the maintainer is audited against.
        group: MachineGroup,
        /// Words the maintainer's standing state holds.
        used: u64,
        /// The group's capacity (`group machines × s`).
        capacity: u64,
    },
}

impl std::fmt::Display for MpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpcError::LocalMemoryExceeded {
                machine,
                used,
                capacity,
            } => write!(
                f,
                "machine {machine} local memory {used} words exceeds capacity {capacity}"
            ),
            MpcError::SendCapExceeded {
                machine,
                attempted,
                capacity,
            } => write!(
                f,
                "machine {machine} attempted to send {attempted} words in one round (cap {capacity})"
            ),
            MpcError::ReceiveCapExceeded {
                machine,
                attempted,
                capacity,
            } => write!(
                f,
                "machine {machine} would receive {attempted} words in one round (cap {capacity})"
            ),
            MpcError::GatherTooLarge { words, capacity } => write!(
                f,
                "gather of {words} words cannot fit in one machine (cap {capacity})"
            ),
            MpcError::NoSuchMachine { machine, cluster } => write!(
                f,
                "message addressed to machine {machine} of a {cluster}-machine cluster"
            ),
            MpcError::ClusterMemoryExceeded {
                maintainer,
                group,
                used,
                capacity,
            } => write!(
                f,
                "maintainer {maintainer:?} holds {used} words of standing state, exceeding \
                 its machine group's capacity {capacity} ({group}; provision more machines)"
            ),
        }
    }
}

impl std::error::Error for MpcError {}

/// The workspace-wide maintainer error: every algorithm structure's
/// batch-application failure converts into this one type (via `From`
/// impls living next to each crate's own error), so heterogeneous
/// maintainers can be driven through one `Session` front door.
///
/// The variants classify *what the caller can do about it*:
///
/// * [`MpcStreamError::Capacity`] — the batch (or the standing state)
///   does not fit the cluster's resource envelope; shrink the batch or
///   provision a larger cluster.
/// * [`MpcStreamError::InvalidBatch`] — the update stream violated the
///   dynamic-graph contract (duplicate insert, deletion of an absent
///   edge, endpoint out of range); fix the stream.
/// * [`MpcStreamError::Unsupported`] — the update kind is outside this
///   maintainer's model (e.g. a deletion in an insertion-only
///   structure); route the update elsewhere.
/// * [`MpcStreamError::BudgetExhausted`] — a maintainer-specific
///   budget (adaptivity exposures, vertex slots) is spent; rebuild
///   with a larger budget.
/// * [`MpcStreamError::Internal`] — an internal invariant failed;
///   a bug, please report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcStreamError {
    /// An MPC resource constraint (local memory, send/receive caps,
    /// gather size) was violated.
    Capacity(MpcError),
    /// The batch violated the maintainer's input contract.
    InvalidBatch(String),
    /// The batch contains an update kind the maintainer does not
    /// support in its stream model.
    Unsupported(String),
    /// A maintainer-specific budget was exhausted.
    BudgetExhausted(String),
    /// An internal invariant failed.
    Internal(String),
}

impl std::fmt::Display for MpcStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpcStreamError::Capacity(e) => write!(f, "capacity: {e}"),
            MpcStreamError::InvalidBatch(d) => write!(f, "invalid batch: {d}"),
            MpcStreamError::Unsupported(d) => write!(f, "unsupported update: {d}"),
            MpcStreamError::BudgetExhausted(d) => write!(f, "budget exhausted: {d}"),
            MpcStreamError::Internal(d) => write!(f, "internal invariant failed: {d}"),
        }
    }
}

impl std::error::Error for MpcStreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpcStreamError::Capacity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MpcError> for MpcStreamError {
    fn from(e: MpcError) -> Self {
        MpcStreamError::Capacity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MpcError::GatherTooLarge {
            words: 100,
            capacity: 10,
        };
        let msg = format!("{e}");
        assert!(msg.contains("100") && msg.contains("10"));
        let e = MpcError::LocalMemoryExceeded {
            machine: 3,
            used: 9,
            capacity: 8,
        };
        assert!(format!("{e}").contains("machine 3"));
    }

    #[test]
    fn every_variant_displays_its_numbers() {
        let cases: Vec<(MpcError, &[&str])> = vec![
            (
                MpcError::SendCapExceeded {
                    machine: 1,
                    attempted: 20,
                    capacity: 16,
                },
                &["machine 1", "20", "16", "send"],
            ),
            (
                MpcError::ReceiveCapExceeded {
                    machine: 2,
                    attempted: 40,
                    capacity: 32,
                },
                &["machine 2", "40", "32", "receive"],
            ),
            (
                MpcError::NoSuchMachine {
                    machine: 9,
                    cluster: 4,
                },
                &["machine 9", "4-machine"],
            ),
            (
                MpcError::ClusterMemoryExceeded {
                    maintainer: "connectivity".into(),
                    group: MachineGroup::new(2, 3),
                    used: 900,
                    capacity: 600,
                },
                &["connectivity", "900", "600", "machines 2..5"],
            ),
        ];
        for (e, needles) in cases {
            let msg = format!("{e}");
            for needle in needles {
                assert!(msg.contains(needle), "{msg:?} lacks {needle:?}");
            }
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(MpcError::NoSuchMachine {
            machine: 0,
            cluster: 1,
        });
        takes_err(MpcStreamError::Internal("x".into()));
    }

    #[test]
    fn stream_error_wraps_mpc_error_with_source() {
        use std::error::Error;
        let inner = MpcError::GatherTooLarge {
            words: 100,
            capacity: 10,
        };
        let e: MpcStreamError = inner.clone().into();
        assert_eq!(e, MpcStreamError::Capacity(inner));
        assert!(e.to_string().contains("capacity"));
        assert!(e.source().is_some());
        assert!(MpcStreamError::InvalidBatch("dup".into())
            .source()
            .is_none());
    }

    #[test]
    fn stream_error_variants_display_their_class() {
        let cases = [
            (MpcStreamError::InvalidBatch("e".into()), "invalid batch"),
            (MpcStreamError::Unsupported("d".into()), "unsupported"),
            (MpcStreamError::BudgetExhausted("b".into()), "budget"),
            (MpcStreamError::Internal("i".into()), "internal"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e} lacks {needle:?}");
        }
    }
}
