//! Error types for the MPC simulator.

/// Errors raised by the simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcError {
    /// A machine's local store exceeded the capacity `s` (strict mode
    /// only; permissive mode records a violation instead).
    LocalMemoryExceeded {
        /// Machine that overflowed.
        machine: usize,
        /// Words the machine would hold.
        used: u64,
        /// The capacity `s`.
        capacity: u64,
    },
    /// A machine tried to send more words in one round than its
    /// capacity allows.
    SendCapExceeded {
        /// Sending machine.
        machine: usize,
        /// Words it attempted to send this round.
        attempted: u64,
        /// The capacity `s`.
        capacity: u64,
    },
    /// A machine would receive more words in one round than its
    /// capacity allows.
    ReceiveCapExceeded {
        /// Receiving machine.
        machine: usize,
        /// Words addressed to it this round.
        attempted: u64,
        /// The capacity `s`.
        capacity: u64,
    },
    /// A coordinator gather was attempted whose payload cannot fit in
    /// one machine — the algorithm's batch-size precondition was
    /// violated.
    GatherTooLarge {
        /// Words gathered.
        words: u64,
        /// The capacity `s`.
        capacity: u64,
    },
    /// A message was addressed to a machine outside the cluster.
    NoSuchMachine {
        /// The invalid destination.
        machine: usize,
        /// Cluster size.
        cluster: usize,
    },
}

impl std::fmt::Display for MpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpcError::LocalMemoryExceeded {
                machine,
                used,
                capacity,
            } => write!(
                f,
                "machine {machine} local memory {used} words exceeds capacity {capacity}"
            ),
            MpcError::SendCapExceeded {
                machine,
                attempted,
                capacity,
            } => write!(
                f,
                "machine {machine} attempted to send {attempted} words in one round (cap {capacity})"
            ),
            MpcError::ReceiveCapExceeded {
                machine,
                attempted,
                capacity,
            } => write!(
                f,
                "machine {machine} would receive {attempted} words in one round (cap {capacity})"
            ),
            MpcError::GatherTooLarge { words, capacity } => write!(
                f,
                "gather of {words} words cannot fit in one machine (cap {capacity})"
            ),
            MpcError::NoSuchMachine { machine, cluster } => write!(
                f,
                "message addressed to machine {machine} of a {cluster}-machine cluster"
            ),
        }
    }
}

impl std::error::Error for MpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MpcError::GatherTooLarge {
            words: 100,
            capacity: 10,
        };
        let msg = format!("{e}");
        assert!(msg.contains("100") && msg.contains("10"));
        let e = MpcError::LocalMemoryExceeded {
            machine: 3,
            used: 9,
            capacity: 8,
        };
        assert!(format!("{e}").contains("machine 3"));
    }

    #[test]
    fn every_variant_displays_its_numbers() {
        let cases: Vec<(MpcError, &[&str])> = vec![
            (
                MpcError::SendCapExceeded {
                    machine: 1,
                    attempted: 20,
                    capacity: 16,
                },
                &["machine 1", "20", "16", "send"],
            ),
            (
                MpcError::ReceiveCapExceeded {
                    machine: 2,
                    attempted: 40,
                    capacity: 32,
                },
                &["machine 2", "40", "32", "receive"],
            ),
            (
                MpcError::NoSuchMachine {
                    machine: 9,
                    cluster: 4,
                },
                &["machine 9", "4-machine"],
            ),
        ];
        for (e, needles) in cases {
            let msg = format!("{e}");
            for needle in needles {
                assert!(msg.contains(needle), "{msg:?} lacks {needle:?}");
            }
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(MpcError::NoSuchMachine {
            machine: 0,
            cluster: 1,
        });
    }
}
