//! The accounting facade used by algorithm crates.
//!
//! [`MpcContext`] charges every MPC primitive an exact round count
//! derived from the cluster shape (validated against the real
//! protocols in [`primitives`](crate::primitives)), tracks
//! per-machine and total memory high-water marks, and slices the
//! counters into *phases* (one phase = one update batch or query, the
//! unit the paper's theorems speak about).

use crate::config::MpcConfig;
use crate::error::MpcError;
use crate::executor::WorkerPool;
use crate::primitives::{tree_fanout, tree_rounds};
use crate::stats::{Op, PhaseReport, Stats};
use std::sync::Arc;

/// One recorded invocation of a mutating [`MpcContext`] operation.
///
/// A forked context (see [`MpcContext::fork_for_branch`]) records every
/// charging/accounting call it receives; the parallel executor then
/// feeds the log back through [`MpcContext::replay`] on the master
/// context, which re-invokes the identical operations in the identical
/// order. All charges are pure functions of the configuration and the
/// call arguments, so a replayed log charges bit-identical rounds,
/// words, peaks, and violations to running the branch serially.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcEvent {
    /// [`MpcContext::exchange`]
    Exchange(u64),
    /// [`MpcContext::broadcast`]
    Broadcast(u64),
    /// [`MpcContext::converge_cast`] `(items, item_words)`
    ConvergeCast(u64, u64),
    /// [`MpcContext::sort`]
    Sort(u64),
    /// [`MpcContext::gather`]
    Gather(u64),
    /// [`MpcContext::alloc`] with the machine already resolved
    Alloc(usize, u64),
    /// [`MpcContext::free`] with the machine already resolved
    Free(usize, u64),
    /// [`MpcContext::set_load`]
    SetLoad(usize, u64),
    /// [`MpcContext::parallel_begin`]
    ParallelBegin,
    /// [`MpcContext::parallel_branch`]
    ParallelBranch,
    /// [`MpcContext::parallel_end`]
    ParallelEnd,
    /// [`MpcContext::begin_phase`]
    BeginPhase(String),
    /// [`MpcContext::end_phase`]
    EndPhase,
}

/// Accounting context for one algorithm instance running on a
/// simulated cluster.
///
/// # Examples
///
/// ```
/// use mpc_sim::{MpcConfig, MpcContext};
///
/// let mut ctx = MpcContext::new(MpcConfig::builder(256, 0.5).build());
/// ctx.begin_phase("batch");
/// ctx.broadcast(10);
/// ctx.converge_cast(256, 4);
/// let r = ctx.end_phase();
/// assert!(r.rounds <= 2 * ctx.config().round_budget_per_primitive());
/// ```
#[derive(Debug, Clone)]
pub struct MpcContext {
    cfg: MpcConfig,
    stats: Stats,
    loads: Vec<u64>,
    total_load: u64,
    phase_label: Option<String>,
    phase_start_rounds: u64,
    phase_start_words: u64,
    parallel_stack: Vec<(u64, u64)>,
    log: Option<Vec<MpcEvent>>,
    pool: Option<Arc<WorkerPool>>,
}

impl MpcContext {
    /// Creates a context for the given cluster configuration.
    pub fn new(cfg: MpcConfig) -> Self {
        let machines = cfg.machines();
        MpcContext {
            cfg,
            stats: Stats::new(),
            loads: vec![0; machines],
            total_load: 0,
            phase_label: None,
            phase_start_rounds: 0,
            phase_start_words: 0,
            parallel_stack: Vec::new(),
            log: None,
            pool: None,
        }
    }

    // ----- parallel executor support ------------------------------

    /// Attaches (or detaches) a host worker pool. Structures that
    /// support intra-group work stealing pick it up via
    /// [`MpcContext::pool`]; `None` (the default) means fully serial
    /// host execution.
    pub fn set_pool(&mut self, pool: Option<Arc<WorkerPool>>) {
        self.pool = pool;
    }

    /// The attached worker pool, if any.
    pub fn pool(&self) -> Option<&WorkerPool> {
        self.pool.as_deref()
    }

    /// Forks a recording context for one parallel branch.
    ///
    /// The fork carries the master's configuration, cumulative stats,
    /// and machine loads (so capacity checks and peak observation see
    /// the true cluster state), but starts with an empty parallel
    /// stack, no active phase, and an **event log**: every mutating
    /// operation invoked on the fork is recorded. The branch runs its
    /// maintainer compute against the fork on a worker thread; the
    /// executor then discards the fork's counters and calls
    /// [`MpcContext::replay`] with [`MpcContext::take_log`]'s events on
    /// the master, inside the master's own parallel scope, in
    /// registration order. Because every charge is a pure function of
    /// `(config, call arguments)`, the master ends up with exactly the
    /// counters serial execution would have produced.
    pub fn fork_for_branch(&self) -> MpcContext {
        let mut fork = self.clone();
        fork.parallel_stack.clear();
        fork.phase_label = None;
        fork.log = Some(Vec::new());
        fork
    }

    /// Takes the recorded event log (empty if recording was off).
    pub fn take_log(&mut self) -> Vec<MpcEvent> {
        self.log.take().unwrap_or_default()
    }

    /// Re-invokes a recorded event sequence on this context, stopping
    /// at (and returning) the first error, exactly as the original
    /// caller would have experienced it.
    ///
    /// # Errors
    ///
    /// Whatever the replayed operation returns — e.g.
    /// [`MpcError::GatherTooLarge`] or, in strict mode,
    /// [`MpcError::LocalMemoryExceeded`].
    pub fn replay(&mut self, events: &[MpcEvent]) -> Result<(), MpcError> {
        // Never re-record while replaying (a master context normally
        // has no log, but replay must be safe on any context).
        let saved = self.log.take();
        let result = self.replay_inner(events);
        self.log = saved;
        result
    }

    fn replay_inner(&mut self, events: &[MpcEvent]) -> Result<(), MpcError> {
        for e in events {
            match e {
                MpcEvent::Exchange(w) => self.exchange(*w),
                MpcEvent::Broadcast(w) => self.broadcast(*w),
                MpcEvent::ConvergeCast(items, w) => self.converge_cast(*items, *w),
                MpcEvent::Sort(w) => self.sort(*w),
                MpcEvent::Gather(w) => self.gather(*w)?,
                MpcEvent::Alloc(m, w) => self.alloc(*m, *w)?,
                MpcEvent::Free(m, w) => self.free(*m, *w),
                MpcEvent::SetLoad(m, w) => self.set_load(*m, *w)?,
                MpcEvent::ParallelBegin => self.parallel_begin(),
                MpcEvent::ParallelBranch => self.parallel_branch(),
                MpcEvent::ParallelEnd => self.parallel_end(),
                MpcEvent::BeginPhase(label) => self.begin_phase(label),
                MpcEvent::EndPhase => {
                    let _ = self.end_phase();
                }
            }
        }
        Ok(())
    }

    #[inline]
    fn record(&mut self, event: MpcEvent) {
        if let Some(log) = self.log.as_mut() {
            log.push(event);
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.cfg
    }

    /// The cumulative counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Total rounds charged so far.
    pub fn rounds(&self) -> u64 {
        self.stats.rounds
    }

    // ----- phases ------------------------------------------------

    /// Starts a phase (an update batch or a query). Phases let
    /// experiments report *rounds per batch*, the paper's headline
    /// quantity.
    pub fn begin_phase(&mut self, label: &str) {
        self.record(MpcEvent::BeginPhase(label.to_string()));
        self.phase_label = Some(label.to_string());
        self.phase_start_rounds = self.stats.rounds;
        self.phase_start_words = self.stats.words_communicated;
    }

    /// Ends the current phase and reports its consumption.
    ///
    /// # Panics
    ///
    /// Panics if no phase is active.
    pub fn end_phase(&mut self) -> PhaseReport {
        self.record(MpcEvent::EndPhase);
        let label = self
            .phase_label
            .take()
            // lint: allow(panic-reachability): documented "# Panics" contract — unbalanced phase calls are a caller bug
            .expect("end_phase without begin_phase");
        PhaseReport {
            label,
            rounds: self.stats.rounds - self.phase_start_rounds,
            words: self.stats.words_communicated - self.phase_start_words,
        }
    }

    // ----- parallel composition -----------------------------------

    /// Opens a parallel scope: independent algorithm instances (the
    /// paper's "run Θ(log n) instances in parallel") run their work
    /// between [`MpcContext::parallel_branch`] calls, and on
    /// [`MpcContext::parallel_end`] the scope contributes the
    /// **maximum** branch round count instead of the sum. Words
    /// (communication volume) still accumulate across branches — all
    /// of it really moves. Per-op round attribution keeps counting
    /// serial-equivalent work.
    pub fn parallel_begin(&mut self) {
        self.record(MpcEvent::ParallelBegin);
        self.parallel_stack.push((self.stats.rounds, 0));
    }

    /// Marks the end of one parallel branch (call after each branch's
    /// work).
    ///
    /// # Panics
    ///
    /// Panics outside a parallel scope.
    pub fn parallel_branch(&mut self) {
        self.record(MpcEvent::ParallelBranch);
        let (saved, max) = *self
            .parallel_stack
            .last()
            // lint: allow(panic-reachability): documented "# Panics" contract — an unbalanced scope is a programmer error
            .expect("parallel_branch outside a parallel scope");
        let used = self.stats.rounds - saved;
        // lint: allow(panic-reachability): guarded by the expect two lines up on the same stack
        let top = self.parallel_stack.last_mut().expect("checked above");
        top.1 = max.max(used);
        self.stats.rounds = saved;
    }

    /// Closes the scope, committing the maximum branch's rounds.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn parallel_end(&mut self) {
        self.record(MpcEvent::ParallelEnd);
        let (saved, max) = self
            .parallel_stack
            .pop()
            // lint: allow(panic-reachability): documented "# Panics" contract — an unbalanced scope is a programmer error
            .expect("parallel_end without parallel_begin");
        // Any trailing un-branched work counts as one more branch.
        let trailing = self.stats.rounds - saved;
        self.stats.rounds = saved + max.max(trailing);
    }

    // ----- round-charged primitives -------------------------------

    /// One synchronous point-to-point exchange moving `words` words.
    pub fn exchange(&mut self, words: u64) {
        self.record(MpcEvent::Exchange(words));
        self.stats.charge(Op::Exchange, 1, words);
    }

    /// Broadcast of a `words`-word payload from a coordinator to all
    /// machines through a fan-out tree.
    pub fn broadcast(&mut self, words: u64) {
        self.record(MpcEvent::Broadcast(words));
        let fanout = tree_fanout(self.cfg.local_capacity(), words);
        let rounds = tree_rounds(self.cfg.machines(), fanout);
        let total = words * self.cfg.machines() as u64;
        self.stats.charge(Op::Broadcast, rounds, total);
    }

    /// Converge-cast (aggregation tree) folding `items` values of
    /// `item_words` words each down to one machine. This is the
    /// paper's sketch-merging step: `O(log_{s/‖sketch‖} n) = O(1/φ)`
    /// rounds (footnote 8 of the paper).
    pub fn converge_cast(&mut self, items: u64, item_words: u64) {
        self.record(MpcEvent::ConvergeCast(items, item_words));
        let fanout = tree_fanout(self.cfg.local_capacity(), item_words);
        let rounds = tree_rounds(items.max(1) as usize, fanout);
        let total = items * item_words;
        self.stats.charge(Op::Aggregate, rounds, total);
    }

    /// Distributed sort of `total_words` words (GSZ'11:
    /// `O(log_s N) = O(1/φ)` rounds).
    pub fn sort(&mut self, total_words: u64) {
        self.record(MpcEvent::Sort(total_words));
        let s = self.cfg.local_capacity().max(2);
        let mut rounds = 1;
        let mut covered = s;
        while covered < total_words.max(1) {
            covered = covered.saturating_mul(s);
            rounds += 1;
        }
        // Sample + route + deliver constant overhead.
        self.stats.charge(Op::Sort, rounds + 2, total_words);
    }

    /// Checks that a `words`-word batch structure *could* be gathered
    /// onto one machine without charging any rounds — the legality
    /// gate every maintainer applies before touching its state
    /// (Section 1.2: a batch must fit into a local machine). Use this
    /// when the batch's routing rounds are charged separately.
    ///
    /// # Errors
    ///
    /// [`MpcError::GatherTooLarge`] if the payload exceeds `s`.
    pub fn ensure_batch_fits(&self, words: u64) -> Result<(), MpcError> {
        if words > self.cfg.local_capacity() {
            return Err(MpcError::GatherTooLarge {
                words,
                capacity: self.cfg.local_capacity(),
            });
        }
        Ok(())
    }

    /// Gathers a `words`-word payload onto the coordinator machine.
    ///
    /// # Errors
    ///
    /// [`MpcError::GatherTooLarge`] if the payload exceeds the local
    /// capacity — the paper's algorithms only ever gather `O(k)`-word
    /// auxiliary structures that fit in one machine (Claim 6.1), so
    /// hitting this means the batch-size precondition was violated.
    pub fn gather(&mut self, words: u64) -> Result<(), MpcError> {
        self.record(MpcEvent::Gather(words));
        if words > self.cfg.local_capacity() {
            return Err(MpcError::GatherTooLarge {
                words,
                capacity: self.cfg.local_capacity(),
            });
        }
        self.stats.charge(Op::Gather, 1, words);
        Ok(())
    }

    // ----- memory accounting --------------------------------------

    /// Records `words` words allocated on machine `m`.
    ///
    /// # Errors
    ///
    /// In strict mode, returns [`MpcError::LocalMemoryExceeded`] if
    /// the machine overflows `s`; in permissive mode the overflow is
    /// recorded in [`Stats::violations`].
    pub fn alloc(&mut self, m: usize, words: u64) -> Result<(), MpcError> {
        self.record(MpcEvent::Alloc(m, words));
        self.loads[m] += words;
        self.total_load += words;
        let used = self.loads[m];
        let cap = self.cfg.local_capacity();
        self.stats.observe_memory(used, self.total_load);
        if used > cap {
            if self.cfg.strict() {
                return Err(MpcError::LocalMemoryExceeded {
                    machine: m,
                    used,
                    capacity: cap,
                });
            }
            self.stats.record_violation(m, used, cap);
        }
        Ok(())
    }

    /// Records `words` words freed on machine `m`.
    ///
    /// # Panics
    ///
    /// Panics if more words are freed than were allocated (an
    /// accounting bug in the calling algorithm).
    pub fn free(&mut self, m: usize, words: u64) {
        self.record(MpcEvent::Free(m, words));
        // lint: allow(panic-reachability): documented "# Panics" contract — over-freeing is an accounting bug, not a data error
        assert!(
            self.loads[m] >= words,
            "machine {m} frees {words} words but holds {}",
            self.loads[m]
        );
        self.loads[m] -= words;
        self.total_load -= words;
    }

    /// Records `words` allocated on the shard machine of vertex `v`.
    ///
    /// # Errors
    ///
    /// As [`MpcContext::alloc`].
    pub fn alloc_vertex(&mut self, v: u32, words: u64) -> Result<(), MpcError> {
        self.alloc(self.cfg.machine_of_vertex(v), words)
    }

    /// Records `words` freed on the shard machine of vertex `v`.
    pub fn free_vertex(&mut self, v: u32, words: u64) {
        self.free(self.cfg.machine_of_vertex(v), words);
    }

    /// Replaces the tracked load of machine `m` with an absolute
    /// word count (convenient for state-holding structures that
    /// re-report their sharded footprint after each batch), observing
    /// peaks and violations like [`MpcContext::alloc`].
    ///
    /// # Errors
    ///
    /// In strict mode, returns [`MpcError::LocalMemoryExceeded`] on
    /// overflow.
    pub fn set_load(&mut self, m: usize, words: u64) -> Result<(), MpcError> {
        self.record(MpcEvent::SetLoad(m, words));
        let old = self.loads[m];
        self.loads[m] = words;
        self.total_load = self.total_load + words - old;
        let cap = self.cfg.local_capacity();
        self.stats.observe_memory(words, self.total_load);
        if words > cap {
            if self.cfg.strict() {
                return Err(MpcError::LocalMemoryExceeded {
                    machine: m,
                    used: words,
                    capacity: cap,
                });
            }
            self.stats.record_violation(m, words, cap);
        }
        Ok(())
    }

    /// Current total words held across the cluster.
    pub fn total_load(&self) -> u64 {
        self.total_load
    }

    /// Current words held on machine `m`.
    pub fn load(&self, m: usize) -> u64 {
        self.loads[m]
    }
}

// A checkpoint is only taken between batches, when no phase or
// parallel scope is open and no branch log is being recorded, so only
// the durable ledger travels: configuration, cumulative stats, and the
// per-machine loads. The host worker pool is a runtime knob the
// restoring host chooses afresh.
impl mpc_snapshot::Persist for MpcContext {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        self.cfg.save(w);
        self.stats.save(w);
        self.loads.save(w);
        self.total_load.save(w);
    }
    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let cfg = MpcConfig::load(r)?;
        let stats = Stats::load(r)?;
        let loads = Vec::<u64>::load(r)?;
        let total_load = u64::load(r)?;
        if loads.len() != cfg.machines() {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "context tracks {} machine loads but the configuration has {} machines",
                loads.len(),
                cfg.machines()
            )));
        }
        if loads.iter().sum::<u64>() != total_load {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "context total load {total_load} does not match the sum of machine loads"
            )));
        }
        Ok(MpcContext {
            cfg,
            stats,
            loads,
            total_load,
            phase_label: None,
            phase_start_rounds: 0,
            phase_start_words: 0,
            parallel_stack: Vec::new(),
            log: None,
            pool: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> MpcContext {
        MpcContext::new(MpcConfig::builder(1024, 0.5).build())
    }

    #[test]
    fn broadcast_rounds_bounded_by_budget() {
        let mut c = ctx();
        c.broadcast(8);
        assert!(c.rounds() <= c.config().round_budget_per_primitive());
    }

    #[test]
    fn converge_cast_rounds_bounded() {
        let mut c = ctx();
        c.converge_cast(1024, 4);
        assert!(c.rounds() >= 1);
        assert!(c.rounds() <= 2 * c.config().round_budget_per_primitive());
    }

    #[test]
    fn sort_rounds_log_s_of_n() {
        let mut c = ctx(); // s = 32
        c.sort(32 * 32); // needs 2 tree levels + 2 overhead
        assert_eq!(c.stats().rounds_by_op[&Op::Sort], 4);
    }

    #[test]
    fn gather_cap_enforced() {
        let mut c = ctx(); // s = 32
        assert!(c.gather(32).is_ok());
        assert!(matches!(c.gather(33), Err(MpcError::GatherTooLarge { .. })));
    }

    #[test]
    fn phases_slice_counters() {
        let mut c = ctx();
        c.begin_phase("a");
        c.exchange(5);
        let ra = c.end_phase();
        assert_eq!(ra.rounds, 1);
        assert_eq!(ra.words, 5);
        c.begin_phase("b");
        c.exchange(7);
        c.exchange(2);
        let rb = c.end_phase();
        assert_eq!(rb.rounds, 2);
        assert_eq!(rb.words, 9);
    }

    #[test]
    #[should_panic(expected = "end_phase without begin_phase")]
    fn end_phase_without_begin_panics() {
        let mut c = ctx();
        let _ = c.end_phase();
    }

    #[test]
    fn memory_accounting_tracks_peaks() {
        let mut c = ctx();
        c.alloc(0, 10).unwrap();
        c.alloc(1, 20).unwrap();
        c.free(0, 5);
        c.alloc(0, 2).unwrap();
        assert_eq!(c.load(0), 7);
        assert_eq!(c.total_load(), 27);
        assert_eq!(c.stats().peak_machine_words, 20);
        assert_eq!(c.stats().peak_total_words, 30);
    }

    #[test]
    fn permissive_mode_records_violation() {
        let mut c = MpcContext::new(
            MpcConfig::builder(1024, 0.5)
                .local_capacity(8)
                .machines(4)
                .build(),
        );
        c.alloc(2, 9).unwrap();
        assert_eq!(c.stats().violations, vec![(2, 9, 8)]);
    }

    #[test]
    fn strict_mode_errors() {
        let mut c = MpcContext::new(
            MpcConfig::builder(1024, 0.5)
                .local_capacity(8)
                .machines(4)
                .strict(true)
                .build(),
        );
        assert!(matches!(
            c.alloc(1, 9),
            Err(MpcError::LocalMemoryExceeded { machine: 1, .. })
        ));
    }

    #[test]
    fn parallel_scope_takes_max_not_sum() {
        let mut c = ctx();
        c.begin_phase("par");
        c.parallel_begin();
        c.exchange(5); // branch 1: 1 round
        c.parallel_branch();
        c.exchange(5);
        c.exchange(5); // branch 2: 2 rounds
        c.parallel_branch();
        c.parallel_end();
        let r = c.end_phase();
        assert_eq!(r.rounds, 2, "max of branches, not sum");
        assert_eq!(r.words, 15, "all communication counted");
    }

    #[test]
    fn nested_parallel_scopes() {
        let mut c = ctx();
        c.begin_phase("nested");
        c.parallel_begin();
        c.exchange(1);
        c.parallel_begin();
        c.exchange(1);
        c.parallel_branch();
        c.exchange(1);
        c.exchange(1);
        c.parallel_branch();
        c.parallel_end(); // inner contributes 2
        c.parallel_branch(); // outer branch 1: 1 + 2 = 3
        c.exchange(1);
        c.parallel_branch(); // outer branch 2: 1
        c.parallel_end();
        assert_eq!(c.end_phase().rounds, 3);
    }

    #[test]
    #[should_panic(expected = "parallel_end without parallel_begin")]
    fn unbalanced_parallel_end_panics() {
        let mut c = ctx();
        c.parallel_end();
    }

    #[test]
    #[should_panic(expected = "frees")]
    fn over_free_panics() {
        let mut c = ctx();
        c.free(0, 1);
    }

    #[test]
    fn fork_replay_matches_direct_execution() {
        // Run the same operation sequence (a) directly on one context
        // and (b) on a fork whose log is replayed onto a second
        // context; the resulting stats and loads must be identical.
        let script = |c: &mut MpcContext| -> Result<(), MpcError> {
            c.begin_phase("batch");
            c.sort(100);
            c.parallel_begin();
            c.converge_cast(64, 4);
            c.alloc_vertex(5, 10)?;
            c.parallel_branch();
            c.broadcast(8);
            c.exchange(3);
            c.parallel_branch();
            c.parallel_end();
            c.gather(16)?;
            c.free_vertex(5, 4);
            c.set_load(0, 7)?;
            let _ = c.end_phase();
            Ok(())
        };
        let mut direct = ctx();
        script(&mut direct).unwrap();

        let master = ctx();
        let mut fork = master.fork_for_branch();
        script(&mut fork).unwrap();
        let mut replayed = master;
        replayed.replay(&fork.take_log()).unwrap();

        assert_eq!(replayed.stats(), direct.stats());
        assert_eq!(replayed.total_load(), direct.total_load());
        for m in 0..replayed.config().machines() {
            assert_eq!(replayed.load(m), direct.load(m));
        }
    }

    #[test]
    fn fork_starts_with_clean_scope_but_keeps_loads() {
        let mut c = ctx();
        c.alloc(0, 12).unwrap();
        c.begin_phase("outer");
        c.parallel_begin();
        let fork = c.fork_for_branch();
        assert_eq!(fork.load(0), 12, "loads carry over");
        assert_eq!(fork.total_load(), 12);
        // The fork has no open scope or phase: branch-local scopes
        // balance from zero regardless of the master's state.
        let mut fork = fork;
        fork.parallel_begin();
        fork.exchange(1);
        fork.parallel_branch();
        fork.parallel_end();
        c.parallel_end();
        let _ = c.end_phase();
    }

    #[test]
    fn replay_reproduces_errors_at_the_same_point() {
        let cfg = MpcConfig::builder(1024, 0.5)
            .local_capacity(8)
            .machines(4)
            .strict(true)
            .build();
        let master = MpcContext::new(cfg);
        let mut fork = master.fork_for_branch();
        fork.exchange(2);
        let err = fork.alloc(1, 9);
        assert!(matches!(err, Err(MpcError::LocalMemoryExceeded { .. })));
        let log = fork.take_log();
        let mut replayed = master;
        let replay_err = replayed.replay(&log);
        assert!(matches!(
            replay_err,
            Err(MpcError::LocalMemoryExceeded { machine: 1, .. })
        ));
        // Work before the failure point was still charged.
        assert_eq!(replayed.stats().rounds, 1);
    }

    #[test]
    fn replay_does_not_rerecord() {
        let master = ctx();
        let mut fork = master.fork_for_branch();
        fork.exchange(1);
        let log = fork.take_log();
        let mut inner = master.fork_for_branch();
        inner.replay(&log).unwrap();
        // Replaying on a recording context must not duplicate events
        // into its own log.
        assert!(inner.take_log().is_empty());
    }

    #[test]
    fn vertex_alloc_routes_to_shard() {
        let mut c = MpcContext::new(MpcConfig::builder(100, 0.5).machines(10).build());
        c.alloc_vertex(23, 4).unwrap();
        assert_eq!(c.load(3), 4);
        c.free_vertex(23, 4);
        assert_eq!(c.load(3), 0);
    }
}
