//! Machine groups: contiguous sub-ranges of the cluster assigned to
//! one algorithm structure each.
//!
//! The paper runs its maintainers "in parallel on disjoint machine
//! groups" (rounds compose by max, communication by sum). A
//! [`MachineGroup`] makes that partition explicit, so the standing
//! state of each maintainer can be audited against *its own* slice of
//! the cluster — and a capacity overrun can name the structure that
//! caused it instead of reporting "the cluster is full".

/// A contiguous sub-range `[start, start + machines)` of the
/// cluster's machines, owned by one maintainer.
///
/// # Examples
///
/// ```
/// use mpc_sim::group::MachineGroup;
///
/// let groups = MachineGroup::partition(10, 3);
/// assert_eq!(groups.len(), 3);
/// // Groups are disjoint and cover the cluster.
/// assert_eq!(groups.iter().map(MachineGroup::machines).sum::<usize>(), 10);
/// assert_eq!(groups[0].capacity(1 << 10), 4 << 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineGroup {
    start: usize,
    machines: usize,
}

impl MachineGroup {
    /// Creates a group of `machines` machines starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `machines == 0` (every group owns at least one
    /// machine).
    pub fn new(start: usize, machines: usize) -> Self {
        // lint: allow(panic-reachability): documented "# Panics" precondition — partition never produces empty groups
        assert!(machines >= 1, "a machine group cannot be empty");
        MachineGroup { start, machines }
    }

    /// First machine of the group.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of machines in the group.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Whether machine `m` belongs to this group.
    pub fn contains(&self, m: usize) -> bool {
        (self.start..self.start + self.machines).contains(&m)
    }

    /// The group's standing-state capacity at local capacity `s`
    /// words per machine.
    pub fn capacity(&self, local_capacity: u64) -> u64 {
        self.machines as u64 * local_capacity
    }

    /// Partitions `total` machines into `parts` contiguous groups, as
    /// evenly as possible (the first `total % parts` groups get one
    /// extra machine). With more parts than machines the groups wrap
    /// round-robin onto single machines — the simulation's analogue
    /// of co-scheduling structures on an under-provisioned cluster
    /// (each still audited against one machine's capacity).
    ///
    /// Returns an empty vector for `parts == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0` while `parts > 0`.
    pub fn partition(total: usize, parts: usize) -> Vec<MachineGroup> {
        if parts == 0 {
            return Vec::new();
        }
        // lint: allow(panic-reachability): documented "# Panics" precondition — cluster sizes are validated at config build time
        assert!(total >= 1, "cannot partition an empty cluster");
        if parts > total {
            return (0..parts)
                .map(|i| MachineGroup::new(i % total, 1))
                .collect();
        }
        let base = total / parts;
        let extra = total % parts;
        let mut groups = Vec::with_capacity(parts);
        let mut start = 0;
        for i in 0..parts {
            let size = base + usize::from(i < extra);
            groups.push(MachineGroup::new(start, size));
            start += size;
        }
        groups
    }
}

impl std::fmt::Display for MachineGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "machines {}..{}", self.start, self.start + self.machines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition_is_disjoint_and_total() {
        let groups = MachineGroup::partition(12, 4);
        assert_eq!(groups.len(), 4);
        for g in &groups {
            assert_eq!(g.machines(), 3);
        }
        for m in 0..12 {
            assert_eq!(groups.iter().filter(|g| g.contains(m)).count(), 1);
        }
    }

    #[test]
    fn remainder_goes_to_leading_groups() {
        let groups = MachineGroup::partition(10, 3);
        assert_eq!(
            groups
                .iter()
                .map(MachineGroup::machines)
                .collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        assert_eq!(groups[1].start(), 4);
        assert_eq!(groups[2].start(), 7);
    }

    #[test]
    fn more_parts_than_machines_wraps() {
        let groups = MachineGroup::partition(2, 5);
        assert_eq!(groups.len(), 5);
        for g in &groups {
            assert_eq!(g.machines(), 1);
            assert!(g.start() < 2);
        }
    }

    #[test]
    fn zero_parts_is_empty() {
        assert!(MachineGroup::partition(8, 0).is_empty());
    }

    #[test]
    fn capacity_and_display() {
        let g = MachineGroup::new(3, 2);
        assert_eq!(g.capacity(100), 200);
        assert_eq!(g.to_string(), "machines 3..5");
        assert!(g.contains(3) && g.contains(4) && !g.contains(5));
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_group_panics() {
        let _ = MachineGroup::new(0, 0);
    }
}
