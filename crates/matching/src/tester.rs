//! Matching-size estimation (paper Theorems 8.5 and 8.6, after
//! [AKL'21/AKL'17]).
//!
//! The meta-algorithm runs `O(log n)` instances of `Tester(G, k)` in
//! parallel at geometric guesses `o_j = 2^j` of `OPT`. Each tester
//! works on the subgraph induced by a `p_j`-sampled vertex set with
//! `p_j = min(1, 2·√(k_j/o_j))` and a space budget of
//! `k_j = Θ(o_j/α²)`: a matching of size `o_j` keeps `≈ p_j²·o_j =
//! Θ(k_j)` edges in the induced subgraph, so the tester can afford to
//! look for a `Θ(k_j)` matching only. The estimate is the largest
//! passing guess; the quadratic sampling is what brings the space to
//! `Õ(n/α²)` (insertion-only) and `Õ(n²/α⁴)` (dynamic).
//!
//! * Insertion-only tester: a greedy matching capped at `k_j`
//!   (Theorem 8.5); passes iff it reaches `k_j/2`.
//! * Dynamic tester: hash the sampled vertices into `Θ(k_j)` groups,
//!   keep an `ℓ0`-sampler per group pair, recover the sparsifier `H`
//!   from the sampler outcomes, and maintain a maximal matching of
//!   `H` with the \[NO21\] substrate (Theorem 8.6); passes iff the
//!   matching reaches `k_j/4` (one extra factor lost to group
//!   collisions).

use crate::greedy::CappedGreedyMatching;
use crate::no21::MaximalMatching;
use mpc_graph::ids::Edge;
use mpc_graph::update::Batch;
use mpc_hashing::field::P;
use mpc_hashing::kwise::KWiseHash;
use mpc_sim::{MpcContext, MpcStreamError};
use mpc_sketch::l0::{L0Sampler, SampleOutcome};
use std::collections::{BTreeMap, BTreeSet};

/// Which stream model an estimator instance supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Insertions only (Theorem 8.5, `Õ(n/α²)` words).
    InsertionOnly,
    /// Insertions and deletions (Theorem 8.6, `Õ(n²/α⁴)` words).
    Dynamic,
}

/// One `Tester(G_p, k)` instance.
#[derive(Debug, Clone)]
enum Tester {
    Insertion {
        k: usize,
        sample_hash: KWiseHash,
        threshold: u64,
        greedy: CappedGreedyMatching,
    },
    Dynamic {
        k: usize,
        n: usize,
        sample_hash: KWiseHash,
        threshold: u64,
        groups: u64,
        group_hash: KWiseHash,
        seed: u64,
        samplers: BTreeMap<(u64, u64), L0Sampler>,
        outcomes: BTreeMap<(u64, u64), Option<Edge>>,
        matcher: MaximalMatching,
    },
}

impl Tester {
    fn sampled(hash: &KWiseHash, threshold: u64, v: u32) -> bool {
        hash.eval(v as u64) < threshold
    }

    fn apply_batch(&mut self, batch: &Batch, ctx: &mut MpcContext) {
        match self {
            Tester::Insertion {
                sample_hash,
                threshold,
                greedy,
                ..
            } => {
                let edges: Vec<Edge> = batch
                    .insertions()
                    .filter(|e| {
                        Self::sampled(sample_hash, *threshold, e.u())
                            && Self::sampled(sample_hash, *threshold, e.v())
                    })
                    .collect();
                greedy.apply_insert_batch(&edges, ctx);
            }
            Tester::Dynamic {
                n,
                sample_hash,
                threshold,
                groups,
                group_hash,
                seed,
                samplers,
                outcomes,
                matcher,
                ..
            } => {
                let mut affected: BTreeSet<(u64, u64)> = BTreeSet::new();
                let mut updates: Vec<(Edge, i64, (u64, u64))> = Vec::new();
                for u in batch.iter() {
                    let e = u.edge();
                    if !Self::sampled(sample_hash, *threshold, e.u())
                        || !Self::sampled(sample_hash, *threshold, e.v())
                    {
                        continue;
                    }
                    let ga = group_hash.eval_range(e.u() as u64, *groups);
                    let gb = group_hash.eval_range(e.v() as u64, *groups);
                    let pair = (ga.min(gb), ga.max(gb));
                    affected.insert(pair);
                    updates.push((e, if u.is_insert() { 1 } else { -1 }, pair));
                }
                if affected.is_empty() {
                    return;
                }
                ctx.exchange(2 * affected.len() as u64);
                let mut deletions = Vec::new();
                for &p in &affected {
                    if let Some(Some(old)) = outcomes.get(&p) {
                        deletions.push(*old);
                    }
                }
                let edge_space = (*n as u64) * (*n as u64);
                for (e, delta, p) in updates {
                    let s = *seed ^ (p.0 << 24) ^ p.1 ^ 0x7e57;
                    samplers
                        .entry(p)
                        .or_insert_with(|| L0Sampler::new(edge_space, s))
                        .update(e.index(*n), delta);
                }
                ctx.exchange(2 * affected.len() as u64);
                let mut insertions = Vec::new();
                for &p in &affected {
                    let new = samplers.get(&p).and_then(|s| match s.sample() {
                        SampleOutcome::Sample { index, weight } if weight.abs() == 1 => {
                            Some(Edge::from_index(index, *n))
                        }
                        _ => None,
                    });
                    outcomes.insert(p, new);
                    if let Some(e) = new {
                        insertions.push(e);
                    }
                }
                matcher.apply_edge_lists(&insertions, &deletions, ctx);
            }
        }
    }

    fn passes(&self) -> bool {
        match self {
            Tester::Insertion { k, greedy, .. } => greedy.len() >= (*k).div_ceil(2),
            Tester::Dynamic { k, matcher, .. } => matcher.matching_size() >= (*k).div_ceil(4),
        }
    }

    fn words(&self) -> u64 {
        match self {
            Tester::Insertion { greedy, .. } => greedy.words(),
            Tester::Dynamic {
                samplers,
                outcomes,
                matcher,
                ..
            } => {
                samplers.values().map(L0Sampler::words).sum::<u64>()
                    + 3 * outcomes.len() as u64
                    + matcher.words()
            }
        }
    }
}

/// The `O(α)` matching-size estimator.
///
/// # Examples
///
/// ```
/// use mpc_matching::{MatchingSizeEstimator, StreamKind};
/// use mpc_graph::ids::Edge;
/// use mpc_graph::update::Batch;
/// use mpc_sim::{MpcConfig, MpcContext};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctx = MpcContext::new(
///     MpcConfig::builder(64, 0.5).local_capacity(1 << 14).build(),
/// );
/// let mut est = MatchingSizeEstimator::new(64, 2.0, StreamKind::InsertionOnly, 7);
/// est.apply_batch(
///     &Batch::inserting((0..32u32).map(|i| Edge::new(2 * i, 2 * i + 1))),
///     &mut ctx,
/// )?;
/// assert!(est.estimate() >= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MatchingSizeEstimator {
    n: usize,
    kind: StreamKind,
    alpha: f64,
    /// `(guess o_j, tester)` pairs, ascending.
    testers: Vec<(usize, Tester)>,
}

impl MatchingSizeEstimator {
    /// Creates the estimator.
    ///
    /// # Panics
    ///
    /// Panics unless `α ≥ 1`.
    pub fn new(n: usize, alpha: f64, kind: StreamKind, seed: u64) -> Self {
        assert!(alpha >= 1.0, "α must be at least 1, got {alpha}");
        let mut testers = Vec::new();
        let mut o = 1usize;
        let mut j = 0u64;
        while o <= n {
            let k = ((o as f64 / (alpha * alpha)).round() as usize).max(1);
            let p = (2.0 * ((k as f64) / (o as f64)).sqrt()).min(1.0);
            let threshold = (p * P as f64) as u64;
            let tseed = seed.wrapping_add(j.wrapping_mul(0x9e37_79b9));
            let sample_hash = KWiseHash::from_seed(2, tseed ^ 0x5a5a);
            let tester = match kind {
                StreamKind::InsertionOnly => Tester::Insertion {
                    k,
                    sample_hash,
                    threshold,
                    greedy: CappedGreedyMatching::new(n, k),
                },
                StreamKind::Dynamic => Tester::Dynamic {
                    k,
                    n,
                    sample_hash,
                    threshold,
                    groups: (2 * k as u64).max(2),
                    group_hash: KWiseHash::from_seed(2, tseed ^ 0xdead_beef),
                    seed: tseed,
                    samplers: BTreeMap::new(),
                    outcomes: BTreeMap::new(),
                    matcher: MaximalMatching::new(n),
                },
            };
            testers.push((o, tester));
            o *= 2;
            j += 1;
        }
        MatchingSizeEstimator {
            n,
            kind,
            alpha,
            testers,
        }
    }

    /// The stream model this estimator accepts.
    pub fn kind(&self) -> StreamKind {
        self.kind
    }

    /// The approximation target `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of parallel testers.
    pub fn tester_count(&self) -> usize {
        self.testers.len()
    }

    /// Processes a batch.
    ///
    /// # Errors
    ///
    /// * [`MpcStreamError::Unsupported`] if a deletion arrives in
    ///   insertion-only mode (state unchanged).
    /// * [`MpcStreamError::Capacity`] when the batch cannot fit one
    ///   machine.
    pub fn apply_batch(
        &mut self,
        batch: &Batch,
        ctx: &mut MpcContext,
    ) -> Result<(), MpcStreamError> {
        if self.kind == StreamKind::InsertionOnly {
            if let Some(d) = batch.deletions().next() {
                return Err(MpcStreamError::Unsupported(format!(
                    "deletion of {d} in insertion-only matching-size estimator"
                )));
            }
        }
        mpc_stream_core::route_batch(batch, self.n, ctx)?;
        // The O(log n) testers run in parallel (Section 8.2).
        ctx.parallel_begin();
        for (_, t) in &mut self.testers {
            t.apply_batch(batch, ctx);
            ctx.parallel_branch();
        }
        ctx.parallel_end();
        Ok(())
    }

    /// The current estimate: the largest passing guess (0 for an
    /// empty graph).
    pub fn estimate(&self) -> usize {
        self.testers
            .iter()
            .rev()
            .find(|(_, t)| t.passes())
            .map(|(o, _)| *o)
            .unwrap_or(0)
    }

    /// Total memory in words across all testers.
    pub fn words(&self) -> u64 {
        self.testers.iter().map(|(_, t)| t.words()).sum()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }
}

impl mpc_stream_core::Maintain for MatchingSizeEstimator {
    fn save_state(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        mpc_snapshot::Persist::save(self, w);
    }

    fn name(&self) -> &'static str {
        match self.kind {
            StreamKind::InsertionOnly => "matching-estimator-insert",
            StreamKind::Dynamic => "matching-estimator-dynamic",
        }
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        MatchingSizeEstimator::words(self)
    }

    fn ingest(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
        MatchingSizeEstimator::apply_batch(self, batch, ctx)
    }

    fn supports(&self, query: &mpc_stream_core::QueryRequest) -> bool {
        use mpc_stream_core::QueryRequest;
        matches!(query, QueryRequest::MatchingSize)
    }

    /// The estimate is the largest passing guess: every tester
    /// reports its pass/fail bit in one converge-cast and the
    /// coordinator takes the maximum (Section 8.2).
    fn answer(
        &mut self,
        query: &mpc_stream_core::QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<mpc_stream_core::QueryResponse, MpcStreamError> {
        use mpc_stream_core::{QueryRequest, QueryResponse};
        match *query {
            QueryRequest::MatchingSize => {
                ctx.converge_cast(self.tester_count() as u64, 1);
                ctx.broadcast(1);
                Ok(QueryResponse::Count(self.estimate() as u64))
            }
            _ => Err(mpc_stream_core::unsupported_query(
                mpc_stream_core::Maintain::name(self),
                query,
            )),
        }
    }
}

// ----- snapshot persistence ---------------------------------------

impl mpc_snapshot::Persist for StreamKind {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_u8(match self {
            StreamKind::InsertionOnly => 0,
            StreamKind::Dynamic => 1,
        });
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        match r.take_u8()? {
            0 => Ok(StreamKind::InsertionOnly),
            1 => Ok(StreamKind::Dynamic),
            t => Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "invalid stream-kind tag {t}"
            ))),
        }
    }
}

impl mpc_snapshot::Persist for Tester {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        match self {
            Tester::Insertion {
                k,
                sample_hash,
                threshold,
                greedy,
            } => {
                w.put_u8(0);
                w.put_usize(*k);
                sample_hash.save(w);
                w.put_u64(*threshold);
                greedy.save(w);
            }
            Tester::Dynamic {
                k,
                n,
                sample_hash,
                threshold,
                groups,
                group_hash,
                seed,
                samplers,
                outcomes,
                matcher,
            } => {
                w.put_u8(1);
                w.put_usize(*k);
                w.put_usize(*n);
                sample_hash.save(w);
                w.put_u64(*threshold);
                w.put_u64(*groups);
                group_hash.save(w);
                w.put_u64(*seed);
                samplers.save(w);
                outcomes.save(w);
                matcher.save(w);
            }
        }
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        match r.take_u8()? {
            0 => Ok(Tester::Insertion {
                k: r.take_usize()?,
                sample_hash: KWiseHash::load(r)?,
                threshold: r.take_u64()?,
                greedy: CappedGreedyMatching::load(r)?,
            }),
            1 => Ok(Tester::Dynamic {
                k: r.take_usize()?,
                n: r.take_usize()?,
                sample_hash: KWiseHash::load(r)?,
                threshold: r.take_u64()?,
                groups: r.take_u64()?,
                group_hash: KWiseHash::load(r)?,
                seed: r.take_u64()?,
                samplers: BTreeMap::load(r)?,
                outcomes: BTreeMap::load(r)?,
                matcher: MaximalMatching::load(r)?,
            }),
            t => Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "invalid tester tag {t}"
            ))),
        }
    }
}

impl mpc_snapshot::Persist for MatchingSizeEstimator {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        self.kind.save(w);
        w.put_f64(self.alpha);
        self.testers.save(w);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let n = r.take_usize()?;
        let kind = StreamKind::load(r)?;
        let alpha = r.take_f64()?;
        let testers = Vec::<(usize, Tester)>::load(r)?;
        if alpha.is_nan() || alpha < 1.0 {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "matching-size estimator needs α ≥ 1, got {alpha}"
            )));
        }
        // Every tester must match the estimator's declared stream
        // contract — a mixed ladder cannot have come from save.
        for (_, t) in &testers {
            let consistent = matches!(
                (kind, t),
                (StreamKind::InsertionOnly, Tester::Insertion { .. })
                    | (StreamKind::Dynamic, Tester::Dynamic { .. })
            );
            if !consistent {
                return Err(mpc_snapshot::SnapshotError::Corrupt(
                    "matching-size estimator holds a tester of the wrong stream kind".into(),
                ));
            }
        }
        Ok(MatchingSizeEstimator {
            n,
            kind,
            alpha,
            testers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::gen;
    use mpc_sim::MpcConfig;

    fn ctx() -> MpcContext {
        MpcContext::new(MpcConfig::builder(512, 0.5).local_capacity(1 << 15).build())
    }

    fn run_planted(kind: StreamKind, planted: usize, alpha: f64, seed: u64) -> (usize, usize) {
        let (stream, opt) = gen::planted_matching_stream(planted, planted, 16, seed);
        let mut c = ctx();
        let mut est = MatchingSizeEstimator::new(stream.n, alpha, kind, seed * 7 + 1);
        for batch in &stream.batches {
            est.apply_batch(batch, &mut c).expect("valid stream");
        }
        (est.estimate(), opt)
    }

    #[test]
    fn insertion_estimates_track_opt() {
        let mut ok = 0;
        let trials = 8;
        for seed in 0..trials {
            let (est, opt) = run_planted(StreamKind::InsertionOnly, 32, 2.0, seed);
            // Within a generous O(α) window on both sides.
            if est * 16 >= opt && est <= 8 * opt {
                ok += 1;
            }
        }
        assert!(ok * 4 >= trials * 3, "only {ok}/{trials} within window");
    }

    #[test]
    fn dynamic_estimates_track_opt() {
        let mut ok = 0;
        let trials = 6;
        for seed in 0..trials {
            let (est, opt) = run_planted(StreamKind::Dynamic, 24, 2.0, seed);
            if est * 32 >= opt && est <= 8 * opt {
                ok += 1;
            }
        }
        assert!(ok * 2 >= trials, "only {ok}/{trials} within window");
    }

    #[test]
    fn dynamic_estimate_falls_after_deletions() {
        let (stream, _opt) = gen::planted_matching_stream(32, 0, 8, 3);
        let mut c = ctx();
        let mut est = MatchingSizeEstimator::new(stream.n, 1.0, StreamKind::Dynamic, 5);
        let mut live = Vec::new();
        for batch in &stream.batches {
            est.apply_batch(batch, &mut c).expect("valid stream");
            live.extend(batch.insertions());
        }
        let before = est.estimate();
        // Delete everything: estimate must drop to 0.
        est.apply_batch(&Batch::deleting(live), &mut c)
            .expect("dynamic mode supports deletions");
        assert_eq!(est.estimate(), 0, "was {before} before deletions");
        assert!(before >= 1);
    }

    #[test]
    fn empty_graph_estimates_zero() {
        let est = MatchingSizeEstimator::new(64, 2.0, StreamKind::InsertionOnly, 1);
        assert_eq!(est.estimate(), 0);
        assert_eq!(est.words(), 0);
    }

    #[test]
    fn memory_shrinks_with_alpha_dynamic() {
        let (stream, _) = gen::planted_matching_stream(32, 32, 16, 9);
        let mut c = ctx();
        let mut tight = MatchingSizeEstimator::new(stream.n, 1.0, StreamKind::Dynamic, 2);
        let mut loose = MatchingSizeEstimator::new(stream.n, 4.0, StreamKind::Dynamic, 2);
        for batch in &stream.batches {
            tight.apply_batch(batch, &mut c).expect("valid stream");
            loose.apply_batch(batch, &mut c).expect("valid stream");
        }
        assert!(
            loose.words() < tight.words(),
            "α=4 should be smaller: {} vs {}",
            loose.words(),
            tight.words()
        );
    }

    #[test]
    fn insertion_only_rejects_deletions_as_error() {
        let mut c = ctx();
        let mut est = MatchingSizeEstimator::new(8, 1.0, StreamKind::InsertionOnly, 1);
        let err = est
            .apply_batch(&Batch::deleting([mpc_graph::ids::Edge::new(0, 1)]), &mut c)
            .expect_err("insertion-only mode");
        assert!(matches!(err, MpcStreamError::Unsupported(_)));
        // The refused batch left no trace.
        assert_eq!(est.estimate(), 0);
    }

    #[test]
    fn oversized_batch_is_capacity_error() {
        let mut c = MpcContext::new(
            MpcConfig::builder(64, 0.5)
                .local_capacity(4)
                .machines(2)
                .build(),
        );
        let mut est = MatchingSizeEstimator::new(64, 2.0, StreamKind::InsertionOnly, 1);
        let big = Batch::inserting((0..8u32).map(|i| Edge::new(2 * i, 2 * i + 1)));
        let err = est.apply_batch(&big, &mut c).expect_err("cannot fit");
        assert!(matches!(err, MpcStreamError::Capacity(_)));
    }
}
