//! Insertion-only `O(α)`-approximate matching (paper Theorem 8.1).
//!
//! Maintain a matching `M` greedily, but stop growing it once
//! `|M| ≥ cap = c·n/α`. If the cap is never reached, `M` is maximal
//! and hence a 2-approximation; if it is reached, `|M| ≥ c·n/α` while
//! `OPT ≤ n/2`, giving an `O(α)` approximation with `Õ(n/α)` words.
//! Each batch costs `O(1)` rounds: broadcast the batch, collect the
//! conflict bits, extend greedily at the coordinator.

use mpc_graph::ids::{Edge, VertexId};
use mpc_sim::MpcContext;
use std::collections::BTreeSet;

/// A greedy matching capped at a fixed size.
///
/// # Examples
///
/// ```
/// use mpc_matching::CappedGreedyMatching;
/// use mpc_graph::ids::Edge;
/// use mpc_sim::{MpcConfig, MpcContext};
///
/// let mut ctx = MpcContext::new(
///     MpcConfig::builder(8, 0.5).local_capacity(1 << 12).build(),
/// );
/// let mut m = CappedGreedyMatching::new(8, 2);
/// m.apply_insert_batch(
///     &[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3), Edge::new(4, 5)],
///     &mut ctx,
/// );
/// assert_eq!(m.len(), 2); // {0,1} then {2,3}; cap reached
/// assert!(m.is_saturated());
/// ```
#[derive(Debug, Clone)]
pub struct CappedGreedyMatching {
    n: usize,
    cap: usize,
    matched: BTreeSet<VertexId>,
    matching: Vec<Edge>,
}

impl CappedGreedyMatching {
    /// Creates an empty matching on `n` vertices capped at `cap`
    /// edges.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(n: usize, cap: usize) -> Self {
        assert!(cap >= 1, "cap must be positive");
        CappedGreedyMatching {
            n,
            cap,
            matched: BTreeSet::new(),
            matching: Vec::new(),
        }
    }

    /// Convenience constructor with the paper's cap `⌈c·n/α⌉`.
    pub fn for_alpha(n: usize, alpha: f64) -> Self {
        assert!(alpha >= 1.0, "α must be at least 1");
        let cap = ((n as f64 / (2.0 * alpha)).ceil() as usize).max(1);
        CappedGreedyMatching::new(n, cap)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Current matching size.
    pub fn len(&self) -> usize {
        self.matching.len()
    }

    /// Whether the matching is empty.
    pub fn is_empty(&self) -> bool {
        self.matching.is_empty()
    }

    /// Whether the cap has been reached (further insertions are
    /// ignored — Theorem 8.1's "do not update anything" case).
    pub fn is_saturated(&self) -> bool {
        self.matching.len() >= self.cap
    }

    /// The matching edges in insertion order.
    pub fn matching(&self) -> &[Edge] {
        &self.matching
    }

    /// Whether `v` is matched.
    pub fn is_matched(&self, v: VertexId) -> bool {
        self.matched.contains(&v)
    }

    /// Memory footprint in words (`Õ(n/α)`: the stored matching and
    /// its endpoint set).
    pub fn words(&self) -> u64 {
        2 * self.matching.len() as u64 + self.matched.len() as u64
    }

    /// Processes a batch of insertions in `O(1)` rounds: the batch is
    /// broadcast, machines report which edges conflict with `M`, and
    /// the coordinator extends greedily until the cap.
    pub fn apply_insert_batch(&mut self, edges: &[Edge], ctx: &mut MpcContext) {
        ctx.exchange(2 * edges.len() as u64);
        ctx.broadcast(2);
        if self.is_saturated() {
            return;
        }
        ctx.exchange(edges.len() as u64);
        for &e in edges {
            if self.matching.len() >= self.cap {
                break;
            }
            if !self.matched.contains(&e.u()) && !self.matched.contains(&e.v()) {
                self.matched.insert(e.u());
                self.matched.insert(e.v());
                self.matching.push(e);
            }
        }
    }
}

// ----- snapshot persistence ---------------------------------------

impl mpc_snapshot::Persist for CappedGreedyMatching {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        w.put_usize(self.cap);
        self.matched.save(w);
        self.matching.save(w);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let n = r.take_usize()?;
        let cap = r.take_usize()?;
        let matched = BTreeSet::<VertexId>::load(r)?;
        let matching = Vec::<Edge>::load(r)?;
        if cap == 0 || matching.len() > cap {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "capped greedy matching holds {} edges against cap {cap}",
                matching.len()
            )));
        }
        Ok(CappedGreedyMatching {
            n,
            cap,
            matched,
            matching,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::gen;
    use mpc_graph::oracle;
    use mpc_sim::MpcConfig;

    fn ctx() -> MpcContext {
        MpcContext::new(MpcConfig::builder(256, 0.5).local_capacity(1 << 14).build())
    }

    #[test]
    fn greedy_is_maximal_below_cap() {
        let n = 64;
        let stream = gen::random_insert_stream(n, 4, 16, 5);
        let mut c = ctx();
        let mut m = CappedGreedyMatching::new(n, n); // effectively uncapped
        let mut live = Vec::new();
        for batch in &stream.batches {
            let ins: Vec<Edge> = batch.insertions().collect();
            m.apply_insert_batch(&ins, &mut c);
            live.extend(ins);
        }
        // Maximality: every live edge touches a matched vertex.
        for e in &live {
            assert!(
                m.is_matched(e.u()) || m.is_matched(e.v()),
                "edge {e} unmatched on both sides"
            );
        }
        // 2-approximation.
        let opt = oracle::maximum_matching_size(n, &live);
        assert!(2 * m.len() >= opt);
    }

    #[test]
    fn cap_bounds_memory() {
        let n = 128;
        let mut c = ctx();
        let mut m = CappedGreedyMatching::for_alpha(n, 8.0);
        let edges: Vec<Edge> = (0..n as u32 / 2)
            .map(|i| Edge::new(2 * i, 2 * i + 1))
            .collect();
        m.apply_insert_batch(&edges, &mut c);
        assert_eq!(m.len(), m.cap());
        assert!(m.is_saturated());
        assert!(m.words() <= 4 * m.cap() as u64);
        // Further insertions are ignored.
        let before = m.len();
        m.apply_insert_batch(&[Edge::new(1, 2)], &mut c);
        assert_eq!(m.len(), before);
    }

    #[test]
    fn saturated_matching_is_alpha_approx() {
        // A perfect matching stream: OPT = n/2; capped greedy keeps
        // n/(2α), so ratio = α exactly.
        let n = 64;
        let alpha = 4.0;
        let mut c = ctx();
        let mut m = CappedGreedyMatching::for_alpha(n, alpha);
        let edges: Vec<Edge> = (0..n as u32 / 2)
            .map(|i| Edge::new(2 * i, 2 * i + 1))
            .collect();
        m.apply_insert_batch(&edges, &mut c);
        let opt = n / 2;
        let ratio = opt as f64 / m.len() as f64;
        assert!(ratio <= alpha + 1e-9, "ratio {ratio} > α {alpha}");
    }

    #[test]
    fn matching_is_disjoint() {
        let n = 32;
        let stream = gen::random_insert_stream(n, 3, 20, 9);
        let mut c = ctx();
        let mut m = CappedGreedyMatching::new(n, 10);
        for batch in &stream.batches {
            let ins: Vec<Edge> = batch.insertions().collect();
            m.apply_insert_batch(&ins, &mut c);
        }
        let mut seen = BTreeSet::new();
        for e in m.matching() {
            assert!(seen.insert(e.u()), "vertex {} reused", e.u());
            assert!(seen.insert(e.v()), "vertex {} reused", e.v());
        }
    }

    #[test]
    fn batches_cost_constant_rounds() {
        let n = 256;
        let mut c = ctx();
        let mut m = CappedGreedyMatching::for_alpha(n, 4.0);
        let budget = 2 * c.config().round_budget_per_primitive();
        for i in 0..8u32 {
            c.begin_phase("greedy");
            let edges: Vec<Edge> = (0..16)
                .map(|j| Edge::new(32 * i + 2 * j, 32 * i + 2 * j + 1))
                .collect();
            m.apply_insert_batch(&edges, &mut c);
            let r = c.end_phase();
            assert!(r.rounds <= budget);
        }
    }
}
