//! Dynamic-stream `O(α)`-approximate matching via the \[AKLY16\]
//! sparsifier (paper Theorem 8.2).
//!
//! For each of `Θ(log n)` guesses `OPT' = n/2, n/4, …`:
//!
//! 1. randomly bipartition the vertices into `L ⊔ R` (pairwise-
//!    independent hash); edges inside a side are dropped (costs a
//!    constant factor),
//! 2. hash each side into `β = ⌈OPT'/α⌉` groups,
//! 3. draw `γ = ⌈OPT'/α²⌉` random *active pairs* `(L_i, R_j)` per
//!    `L`-group and maintain one `ℓ0`-sampler per active pair over
//!    `E(L_i, R_j)`,
//! 4. the sampler outcomes form the sparsifier `H` of size
//!    `Õ(max{n²/α³, n/α})`; a maximal matching of `H` is an
//!    `O(α)`-approximation (Lemma 8.3).
//!
//! Batch processing (the paper's proof of Theorem 8.2): broadcast the
//! batch, find the *active updates*, gather the affected samplers'
//! old outcomes `X`, delete `X` from `H`, update the samplers,
//! gather the new outcomes `Y`, insert `Y` into `H`, and run the
//! maximal-matching substrate — `O(log 1/κ)` rounds end to end.

use crate::no21::MaximalMatching;
use mpc_graph::ids::{Edge, VertexId};
use mpc_graph::update::Batch;
use mpc_hashing::kwise::KWiseHash;
use mpc_sim::{MpcContext, MpcStreamError};
use mpc_sketch::l0::{L0Sampler, SampleOutcome};
use std::collections::{BTreeMap, BTreeSet};

/// One guess `OPT'` of the maximum matching size.
#[derive(Debug, Clone)]
struct Guess {
    /// The OPT' guess this instance was parameterized for (kept for
    /// diagnostics and the experiment harness).
    #[allow(dead_code)]
    opt_guess: usize,
    beta: u64,
    gamma: u64,
    seed: u64,
    edge_space: u64,
    side_hash: KWiseHash,
    h_l: KWiseHash,
    h_r: KWiseHash,
    assign_hash: KWiseHash,
    samplers: BTreeMap<(u64, u64), L0Sampler>,
    outcomes: BTreeMap<(u64, u64), Option<Edge>>,
    matcher: MaximalMatching,
}

impl Guess {
    fn new(n: usize, opt_guess: usize, alpha: f64, seed: u64) -> Self {
        let beta = ((opt_guess as f64 / alpha).ceil() as u64).max(1);
        let gamma = ((opt_guess as f64 / (alpha * alpha)).ceil() as u64).max(1);
        Guess {
            opt_guess,
            beta,
            gamma,
            seed,
            edge_space: (n as u64) * (n as u64),
            side_hash: KWiseHash::from_seed(2, seed ^ 0x51de),
            h_l: KWiseHash::from_seed(2, seed ^ 0x1eff),
            h_r: KWiseHash::from_seed(2, seed ^ 0x417e),
            assign_hash: KWiseHash::from_seed(2, seed ^ 0xac7e),
            samplers: BTreeMap::new(),
            outcomes: BTreeMap::new(),
            matcher: MaximalMatching::new(n),
        }
    }

    fn in_left(&self, v: VertexId) -> bool {
        self.side_hash.eval_bit(v as u64)
    }

    /// The `(L_i, R_j)` group pair of an edge, or `None` for a
    /// same-side edge (dropped by the algorithm).
    fn pair_of(&self, e: Edge) -> Option<(u64, u64)> {
        let (a, b) = e.endpoints();
        let (l, r) = match (self.in_left(a), self.in_left(b)) {
            (true, false) => (a, b),
            (false, true) => (b, a),
            _ => return None,
        };
        Some((
            self.h_l.eval_range(l as u64, self.beta),
            self.h_r.eval_range(r as u64, self.beta),
        ))
    }

    /// Whether `(L_i, R_j)` is one of the `γ` active pairs of `L_i`.
    fn is_active(&self, i: u64, j: u64) -> bool {
        (0..self.gamma).any(|g| self.assign_hash.eval_range(i * self.gamma + g, self.beta) == j)
    }

    fn sampler_outcome(sampler: &L0Sampler, n: usize) -> Option<Edge> {
        match sampler.sample() {
            SampleOutcome::Sample { index, weight } if weight.abs() == 1 => {
                Some(Edge::from_index(index, n))
            }
            _ => None,
        }
    }

    fn apply_batch(&mut self, n: usize, batch: &Batch, ctx: &mut MpcContext) {
        // Identify active updates and their pairs.
        let mut affected: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut active_updates: Vec<(Edge, i64, (u64, u64))> = Vec::new();
        for u in batch.iter() {
            let e = u.edge();
            if let Some((i, j)) = self.pair_of(e) {
                if self.is_active(i, j) {
                    affected.insert((i, j));
                    active_updates.push((e, if u.is_insert() { 1 } else { -1 }, (i, j)));
                }
            }
        }
        if affected.is_empty() {
            return;
        }
        ctx.exchange(2 * affected.len() as u64);
        // Old outcomes X, deleted from H.
        let mut deletions: Vec<Edge> = Vec::new();
        for &p in &affected {
            if let Some(Some(old)) = self.outcomes.get(&p) {
                deletions.push(*old);
            }
        }
        // Update the samplers.
        for (e, delta, p) in active_updates {
            let seed = self.seed ^ (p.0 << 20) ^ p.1 ^ 0xeb1e;
            let edge_space = self.edge_space;
            let sampler = self
                .samplers
                .entry(p)
                .or_insert_with(|| L0Sampler::new(edge_space, seed));
            sampler.update(e.index(n), delta);
        }
        // New outcomes Y, inserted into H.
        ctx.exchange(2 * affected.len() as u64);
        let mut insertions: Vec<Edge> = Vec::new();
        for &p in &affected {
            let new = self
                .samplers
                .get(&p)
                .and_then(|s| Self::sampler_outcome(s, n));
            let old = self.outcomes.insert(p, new).flatten();
            let _ = old; // already queued for deletion above
            if let Some(e) = new {
                insertions.push(e);
            }
        }
        // Keep H consistent: delete all old outcomes of affected
        // pairs, insert all new ones (unchanged outcomes are a
        // delete+insert pair, harmless for the matcher).
        self.matcher.apply_edge_lists(&insertions, &deletions, ctx);
    }

    fn words(&self) -> u64 {
        let sampler_words: u64 = self.samplers.values().map(L0Sampler::words).sum();
        sampler_words + 3 * self.outcomes.len() as u64 + self.matcher.words()
    }
}

/// The \[AKLY16\] dynamic matcher of Theorem 8.2.
///
/// # Examples
///
/// ```
/// use mpc_matching::AklyMatching;
/// use mpc_graph::ids::Edge;
/// use mpc_graph::update::Batch;
/// use mpc_sim::{MpcConfig, MpcContext};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctx = MpcContext::new(
///     MpcConfig::builder(32, 0.5).local_capacity(1 << 14).build(),
/// );
/// let mut akly = AklyMatching::new(32, 2.0, 7);
/// akly.apply_batch(
///     &Batch::inserting((0..16u32).map(|i| Edge::new(2 * i, 2 * i + 1))),
///     &mut ctx,
/// )?;
/// let m = akly.matching();
/// // All reported edges are live and disjoint.
/// assert!(m.len() <= 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AklyMatching {
    n: usize,
    alpha: f64,
    guesses: Vec<Guess>,
}

impl AklyMatching {
    /// Creates the matcher for an `n`-vertex dynamic graph with
    /// approximation target `α`.
    ///
    /// # Panics
    ///
    /// Panics unless `α ≥ 1`.
    pub fn new(n: usize, alpha: f64, seed: u64) -> Self {
        assert!(alpha >= 1.0, "α must be at least 1, got {alpha}");
        let mut guesses = Vec::new();
        let mut opt_guess = (n / 2).max(1);
        let mut g = 0u64;
        loop {
            guesses.push(Guess::new(
                n,
                opt_guess,
                alpha,
                seed.wrapping_add(g * 0x9e37),
            ));
            if opt_guess == 1 {
                break;
            }
            opt_guess /= 2;
            g += 1;
        }
        AklyMatching { n, alpha, guesses }
    }

    /// Number of parallel `OPT'` guesses.
    pub fn guess_count(&self) -> usize {
        self.guesses.len()
    }

    /// The approximation target `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Processes a batch of insertions and deletions.
    ///
    /// # Errors
    ///
    /// * [`MpcStreamError::InvalidBatch`] on an endpoint outside
    ///   `[0, n)` (state unchanged).
    /// * [`MpcStreamError::Capacity`] when the batch cannot fit one
    ///   machine.
    pub fn apply_batch(
        &mut self,
        batch: &Batch,
        ctx: &mut MpcContext,
    ) -> Result<(), MpcStreamError> {
        mpc_stream_core::route_batch(batch, self.n, ctx)?;
        // The Θ(log n) guesses run in parallel (Section 8.1).
        ctx.parallel_begin();
        for guess in &mut self.guesses {
            guess.apply_batch(self.n, batch, ctx);
            ctx.parallel_branch();
        }
        ctx.parallel_end();
        Ok(())
    }

    /// The best maximal matching across all guesses' sparsifiers.
    pub fn matching(&self) -> Vec<Edge> {
        self.guesses
            .iter()
            .map(|g| g.matcher.matching())
            .max_by_key(Vec::len)
            .unwrap_or_default()
    }

    /// Size of the reported matching.
    pub fn matching_size(&self) -> usize {
        self.matching().len()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Total memory in words across all guesses
    /// (`Õ(max{n²/α³, n/α})`).
    pub fn words(&self) -> u64 {
        self.guesses.iter().map(Guess::words).sum()
    }
}

impl mpc_stream_core::Maintain for AklyMatching {
    fn save_state(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        mpc_snapshot::Persist::save(self, w);
    }

    fn name(&self) -> &'static str {
        "matching-akly"
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        AklyMatching::words(self)
    }

    fn ingest(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
        AklyMatching::apply_batch(self, batch, ctx)
    }

    fn supports(&self, query: &mpc_stream_core::QueryRequest) -> bool {
        use mpc_stream_core::QueryRequest;
        matches!(
            query,
            QueryRequest::MatchingSize | QueryRequest::MatchingEdges
        )
    }

    /// The reported matching is the best guess's: every guess
    /// converge-casts its size, the coordinator picks the winner, and
    /// the edge report additionally pays the output sort.
    fn answer(
        &mut self,
        query: &mpc_stream_core::QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<mpc_stream_core::QueryResponse, MpcStreamError> {
        use mpc_stream_core::{QueryRequest, QueryResponse};
        match *query {
            QueryRequest::MatchingSize => {
                ctx.converge_cast(self.guess_count() as u64, 1);
                ctx.broadcast(1);
                Ok(QueryResponse::Count(self.matching_size() as u64))
            }
            QueryRequest::MatchingEdges => {
                ctx.converge_cast(self.guess_count() as u64, 1);
                let matching = self.matching();
                ctx.sort(2 * matching.len() as u64 + 1);
                Ok(QueryResponse::Edges(matching))
            }
            _ => Err(mpc_stream_core::unsupported_query("matching-akly", query)),
        }
    }
}

// ----- snapshot persistence ---------------------------------------

impl mpc_snapshot::Persist for Guess {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.opt_guess);
        w.put_u64(self.beta);
        w.put_u64(self.gamma);
        w.put_u64(self.seed);
        w.put_u64(self.edge_space);
        self.side_hash.save(w);
        self.h_l.save(w);
        self.h_r.save(w);
        self.assign_hash.save(w);
        self.samplers.save(w);
        self.outcomes.save(w);
        self.matcher.save(w);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        Ok(Guess {
            opt_guess: r.take_usize()?,
            beta: r.take_u64()?,
            gamma: r.take_u64()?,
            seed: r.take_u64()?,
            edge_space: r.take_u64()?,
            side_hash: KWiseHash::load(r)?,
            h_l: KWiseHash::load(r)?,
            h_r: KWiseHash::load(r)?,
            assign_hash: KWiseHash::load(r)?,
            samplers: BTreeMap::load(r)?,
            outcomes: BTreeMap::load(r)?,
            matcher: MaximalMatching::load(r)?,
        })
    }
}

impl mpc_snapshot::Persist for AklyMatching {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        w.put_f64(self.alpha);
        self.guesses.save(w);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let n = r.take_usize()?;
        let alpha = r.take_f64()?;
        let guesses = Vec::<Guess>::load(r)?;
        if alpha.is_nan() || alpha < 1.0 || guesses.is_empty() {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "akly matcher needs α ≥ 1 (got {alpha}) and a non-empty guess ladder"
            )));
        }
        Ok(AklyMatching { n, alpha, guesses })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::dynamic::DynamicGraph;
    use mpc_graph::gen;
    use mpc_graph::oracle;
    use mpc_sim::MpcConfig;

    fn ctx() -> MpcContext {
        MpcContext::new(MpcConfig::builder(256, 0.5).local_capacity(1 << 15).build())
    }

    fn check_valid(m: &[Edge], live: &DynamicGraph) {
        let mut used = BTreeSet::new();
        for e in m {
            assert!(live.contains(*e), "matched edge {e} not live");
            assert!(used.insert(e.u()) && used.insert(e.v()), "overlap at {e}");
        }
    }

    #[test]
    fn matching_is_always_valid_under_churn() {
        let n = 64;
        let stream = gen::random_mixed_stream(n, 10, 12, 0.7, 21);
        let snaps = stream.replay();
        let mut c = ctx();
        let mut akly = AklyMatching::new(n, 2.0, 5);
        for (batch, snap) in stream.batches.iter().zip(&snaps) {
            akly.apply_batch(batch, &mut c).expect("valid stream");
            check_valid(&akly.matching(), snap);
        }
    }

    #[test]
    fn finds_large_matching_on_planted_instance() {
        let (stream, opt) = gen::planted_matching_stream(24, 30, 12, 3);
        let snaps = stream.replay();
        let mut c = ctx();
        let mut akly = AklyMatching::new(stream.n, 2.0, 9);
        for batch in &stream.batches {
            akly.apply_batch(batch, &mut c).expect("valid stream");
        }
        check_valid(&akly.matching(), snaps.last().expect("nonempty"));
        let size = akly.matching_size();
        // O(α) guarantee with generous constant: the bipartition
        // halves, group collisions halve again.
        assert!(
            size as f64 * 8.0 * akly.alpha() >= opt as f64,
            "matching {size} too small for OPT {opt}"
        );
    }

    #[test]
    fn deletion_heavy_stream_stays_consistent() {
        let n = 48;
        // Build a dense matching then delete most of it.
        let (stream, _) = gen::planted_matching_stream(16, 20, 8, 4);
        let mut c = ctx();
        let mut akly = AklyMatching::new(stream.n, 2.0, 11);
        let mut live = DynamicGraph::new(stream.n);
        for batch in &stream.batches {
            akly.apply_batch(batch, &mut c).expect("valid stream");
            live.apply(batch).unwrap();
        }
        // Delete half the live edges.
        let victims: Vec<Edge> = live.edges().step_by(2).collect();
        let del = Batch::deleting(victims.clone());
        akly.apply_batch(&del, &mut c).expect("valid stream");
        live.apply(&del).unwrap();
        check_valid(&akly.matching(), &live);
        let _ = n;
    }

    #[test]
    fn memory_scales_down_with_alpha() {
        let n = 128;
        let stream = gen::random_insert_stream(n, 4, 24, 8);
        let mut small_alpha = AklyMatching::new(n, 1.0, 1);
        let mut big_alpha = AklyMatching::new(n, 8.0, 1);
        let mut c = ctx();
        for batch in &stream.batches {
            small_alpha
                .apply_batch(batch, &mut c)
                .expect("valid stream");
            big_alpha.apply_batch(batch, &mut c).expect("valid stream");
        }
        assert!(
            big_alpha.words() < small_alpha.words(),
            "α=8 should use less memory than α=1 ({} vs {})",
            big_alpha.words(),
            small_alpha.words()
        );
    }

    #[test]
    fn same_side_edges_are_dropped_not_crashed() {
        let n = 16;
        let mut c = ctx();
        let mut akly = AklyMatching::new(n, 2.0, 2);
        // Whatever the bipartition, some of these land same-side.
        akly.apply_batch(
            &Batch::inserting((0..8u32).map(|i| Edge::new(i, i + 8))),
            &mut c,
        )
        .expect("valid stream");
        let live = {
            let mut g = DynamicGraph::new(n);
            g.apply(&Batch::inserting((0..8u32).map(|i| Edge::new(i, i + 8))))
                .unwrap();
            g
        };
        check_valid(&akly.matching(), &live);
    }

    #[test]
    fn ratio_vs_exact_opt_measured() {
        // Statistical check across seeds: median ratio within 4α.
        let mut ratios = Vec::new();
        for seed in 0..6 {
            let (stream, _) = gen::planted_matching_stream(16, 10, 8, seed);
            let snaps = stream.replay();
            let mut c = ctx();
            let mut akly = AklyMatching::new(stream.n, 2.0, seed * 31 + 1);
            for batch in &stream.batches {
                akly.apply_batch(batch, &mut c).expect("valid stream");
            }
            let last = snaps.last().expect("nonempty");
            let edges: Vec<Edge> = last.edges().collect();
            let opt = oracle::maximum_matching_size(stream.n, &edges);
            let got = akly.matching_size().max(1);
            ratios.push(opt as f64 / got as f64);
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = ratios[ratios.len() / 2];
        assert!(median <= 4.0 * 2.0, "median ratio {median} too large");
    }

    use std::collections::BTreeSet;
}
