//! Batch-dynamic **maximal** matching — the substrate standing in for
//! Nowicki–Onak \[NO21\] (paper Proposition 8.4).
//!
//! The paper uses \[NO21\] as a black box: a structure over an
//! explicitly stored graph `H` that processes a batch of `O(s^{1-κ})`
//! insertions/deletions in `O(log 1/κ)` rounds and maintains a
//! maximal matching in `Õ(|E(H)|)` total memory. We provide the same
//! contract with a simpler mechanism (a documented substitution, see
//! DESIGN.md): after applying the batch, free vertices are re-matched
//! by synchronized rounds of greedy proposals — every free vertex
//! proposes to its smallest free neighbor, every free vertex accepts
//! its smallest proposer. Each round matches at least the
//! lexicographically smallest free–free edge, and empirically the
//! loop ends in a handful of rounds (measured and reported by
//! [`MaximalMatching::last_rematch_rounds`]).
//!
//! The only property the downstream analyses need (Lemma 8.3 /
//! \[AKL'17\]) is **maximality**, which holds exactly on exit and is
//! property-tested.

use mpc_graph::ids::{Edge, VertexId};
use mpc_graph::update::Batch;
use mpc_sim::{MpcContext, MpcStreamError};
use std::collections::BTreeSet;

/// A maximal matching over an explicitly stored dynamic graph.
///
/// # Examples
///
/// ```
/// use mpc_matching::MaximalMatching;
/// use mpc_graph::ids::Edge;
/// use mpc_graph::update::Batch;
/// use mpc_sim::{MpcConfig, MpcContext};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctx = MpcContext::new(
///     MpcConfig::builder(8, 0.5).local_capacity(1 << 12).build(),
/// );
/// let mut mm = MaximalMatching::new(8);
/// mm.apply_batch(&Batch::inserting([Edge::new(0, 1), Edge::new(1, 2)]), &mut ctx)?;
/// assert_eq!(mm.matching().len(), 1);
/// // Deleting the matched edge re-matches through the other.
/// let matched = mm.matching()[0];
/// mm.apply_batch(&Batch::deleting([matched]), &mut ctx)?;
/// assert_eq!(mm.matching().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MaximalMatching {
    n: usize,
    adj: Vec<BTreeSet<VertexId>>,
    mate: Vec<Option<VertexId>>,
    edge_count: usize,
    last_rematch_rounds: u64,
}

impl MaximalMatching {
    /// Creates an empty graph and matching on `n` vertices.
    pub fn new(n: usize) -> Self {
        MaximalMatching {
            n,
            adj: vec![BTreeSet::new(); n],
            mate: vec![None; n],
            edge_count: 0,
            last_rematch_rounds: 0,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of live edges in the stored graph `H`.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The matching as a list of edges.
    pub fn matching(&self) -> Vec<Edge> {
        (0..self.n as u32)
            .filter_map(|v| {
                self.mate[v as usize]
                    .filter(|&w| v < w)
                    .map(|w| Edge::new(v, w))
            })
            .collect()
    }

    /// Current matching size.
    pub fn matching_size(&self) -> usize {
        self.mate.iter().flatten().count() / 2
    }

    /// The mate of `v`, if matched.
    pub fn mate_of(&self, v: VertexId) -> Option<VertexId> {
        self.mate[v as usize]
    }

    /// Proposal rounds the last batch needed to restore maximality
    /// (the measured stand-in for \[NO21\]'s `O(log 1/κ)`).
    pub fn last_rematch_rounds(&self) -> u64 {
        self.last_rematch_rounds
    }

    /// Memory footprint in words (`Õ(|E(H)| + n)`, the
    /// Proposition 8.4 budget for the sparsifier it runs on).
    pub fn words(&self) -> u64 {
        self.n as u64 + 2 * self.edge_count as u64
    }

    /// Whether the matching is maximal (no live edge joins two free
    /// vertices). `O(m)` scan — test/diagnostic use.
    pub fn is_maximal(&self) -> bool {
        (0..self.n as u32).all(|v| {
            self.mate[v as usize].is_some()
                || self.adj[v as usize]
                    .iter()
                    .all(|&w| self.mate[w as usize].is_some())
        })
    }

    /// Applies one update batch **in arrival order**, then restores
    /// maximality once.
    ///
    /// Duplicate insertions and missing deletions are ignored: the
    /// stored graph `H` is usually a sparsifier whose layers replay
    /// sampler outcomes, so the stream is *set*-semantic here, unlike
    /// the simple-graph contract of the connectivity maintainers.
    ///
    /// # Errors
    ///
    /// * [`MpcStreamError::InvalidBatch`] on an endpoint outside
    ///   `[0, n)` (state unchanged).
    /// * [`MpcStreamError::Capacity`] when the batch cannot fit one
    ///   machine.
    pub fn apply_batch(
        &mut self,
        batch: &Batch,
        ctx: &mut MpcContext,
    ) -> Result<(), MpcStreamError> {
        mpc_stream_core::route_batch(batch, self.n, ctx)?;
        for u in batch.iter() {
            if u.is_insert() {
                self.insert_edge_inner(u.edge());
            } else {
                self.delete_edge_inner(u.edge());
            }
        }
        self.rematch(ctx);
        Ok(())
    }

    /// Raw edge-list application for the sparsifier layers: deletions
    /// (the retracted old sampler outcomes) first, then insertions
    /// (the new outcomes). Outcomes are sets, so no arrival order
    /// exists to preserve, and an unchanged outcome is a harmless
    /// delete+insert pair only under this order.
    pub(crate) fn apply_edge_lists(
        &mut self,
        insertions: &[Edge],
        deletions: &[Edge],
        ctx: &mut MpcContext,
    ) {
        let k = (insertions.len() + deletions.len()) as u64;
        ctx.exchange(2 * k + 1);
        ctx.broadcast(2);
        for &e in deletions {
            self.delete_edge_inner(e);
        }
        for &e in insertions {
            self.insert_edge_inner(e);
        }
        self.rematch(ctx);
    }

    fn insert_edge_inner(&mut self, e: Edge) {
        let (u, v) = e.endpoints();
        if self.adj[u as usize].insert(v) {
            self.adj[v as usize].insert(u);
            self.edge_count += 1;
        }
    }

    fn delete_edge_inner(&mut self, e: Edge) {
        let (u, v) = e.endpoints();
        if self.adj[u as usize].remove(&v) {
            self.adj[v as usize].remove(&u);
            self.edge_count -= 1;
            if self.mate[u as usize] == Some(v) {
                self.mate[u as usize] = None;
                self.mate[v as usize] = None;
            }
        }
    }

    /// Synchronized greedy proposal rounds until maximal.
    fn rematch(&mut self, ctx: &mut MpcContext) {
        self.last_rematch_rounds = 0;
        loop {
            // Proposal phase: every free vertex with a free neighbor
            // proposes to its smallest free neighbor.
            let mut proposals: Vec<(VertexId, VertexId)> = Vec::new(); // (target, proposer)
            for v in 0..self.n as u32 {
                if self.mate[v as usize].is_some() {
                    continue;
                }
                if let Some(&w) = self.adj[v as usize]
                    .iter()
                    .find(|&&w| self.mate[w as usize].is_none())
                {
                    proposals.push((w, v));
                }
            }
            if proposals.is_empty() {
                break;
            }
            self.last_rematch_rounds += 1;
            ctx.exchange(2 * proposals.len() as u64);
            ctx.exchange(proposals.len() as u64);
            // Acceptance phase: every free vertex accepts its
            // smallest proposer; both sides re-check freeness as
            // matches are committed in id order.
            proposals.sort_unstable();
            for (target, proposer) in proposals {
                if self.mate[target as usize].is_none() && self.mate[proposer as usize].is_none() {
                    self.mate[target as usize] = Some(proposer);
                    self.mate[proposer as usize] = Some(target);
                }
            }
        }
    }
}

impl mpc_stream_core::Maintain for MaximalMatching {
    fn save_state(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        mpc_snapshot::Persist::save(self, w);
    }

    fn name(&self) -> &'static str {
        "matching-maximal"
    }

    fn n(&self) -> usize {
        self.vertex_count()
    }

    fn words(&self) -> u64 {
        MaximalMatching::words(self)
    }

    fn validate(&self) -> Result<(), MpcStreamError> {
        if self.is_maximal() {
            Ok(())
        } else {
            Err(MpcStreamError::Internal("matching lost maximality".into()))
        }
    }

    fn ingest(&mut self, batch: &Batch, ctx: &mut MpcContext) -> Result<(), MpcStreamError> {
        MaximalMatching::apply_batch(self, batch, ctx)
    }

    fn supports(&self, query: &mpc_stream_core::QueryRequest) -> bool {
        use mpc_stream_core::QueryRequest;
        matches!(
            query,
            QueryRequest::MatchingSize | QueryRequest::MatchingEdges
        )
    }

    /// The matching is maintained explicitly: its size is one
    /// converge-cast of per-shard matched counts, the edge list is
    /// the model's output sort.
    fn answer(
        &mut self,
        query: &mpc_stream_core::QueryRequest,
        ctx: &mut MpcContext,
    ) -> Result<mpc_stream_core::QueryResponse, MpcStreamError> {
        use mpc_stream_core::{QueryRequest, QueryResponse};
        match *query {
            QueryRequest::MatchingSize => {
                ctx.converge_cast(self.n as u64, 1);
                Ok(QueryResponse::Count(self.matching_size() as u64))
            }
            QueryRequest::MatchingEdges => {
                let matching = self.matching();
                ctx.sort(2 * matching.len() as u64 + 1);
                Ok(QueryResponse::Edges(matching))
            }
            _ => Err(mpc_stream_core::unsupported_query(
                "matching-maximal",
                query,
            )),
        }
    }
}

// ----- snapshot persistence ---------------------------------------

impl mpc_snapshot::Persist for MaximalMatching {
    fn save(&self, w: &mut mpc_snapshot::SnapshotWriter) {
        w.put_usize(self.n);
        self.adj.save(w);
        self.mate.save(w);
        w.put_usize(self.edge_count);
        w.put_u64(self.last_rematch_rounds);
    }

    fn load(r: &mut mpc_snapshot::SnapshotReader<'_>) -> Result<Self, mpc_snapshot::SnapshotError> {
        let n = r.take_usize()?;
        let adj = Vec::<BTreeSet<VertexId>>::load(r)?;
        let mate = Vec::<Option<VertexId>>::load(r)?;
        let edge_count = r.take_usize()?;
        let last_rematch_rounds = r.take_u64()?;
        if adj.len() != n || mate.len() != n {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "maximal matching tables cover {}/{} of {n} vertices",
                adj.len(),
                mate.len()
            )));
        }
        let degree_sum: usize = adj.iter().map(BTreeSet::len).sum();
        if degree_sum != 2 * edge_count {
            return Err(mpc_snapshot::SnapshotError::Corrupt(format!(
                "maximal matching edge count {edge_count} disagrees with degree sum {degree_sum}"
            )));
        }
        Ok(MaximalMatching {
            n,
            adj,
            mate,
            edge_count,
            last_rematch_rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_graph::gen;
    use mpc_graph::oracle;
    use mpc_graph::update::Update;
    use mpc_sim::MpcConfig;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn ctx() -> MpcContext {
        MpcContext::new(MpcConfig::builder(256, 0.5).local_capacity(1 << 14).build())
    }

    #[test]
    fn empty_graph_is_trivially_maximal() {
        let mm = MaximalMatching::new(4);
        assert!(mm.is_maximal());
        assert_eq!(mm.matching_size(), 0);
    }

    #[test]
    fn path_matches_alternately() {
        let mut c = ctx();
        let mut mm = MaximalMatching::new(6);
        let path: Vec<Edge> = (0..5u32).map(|i| Edge::new(i, i + 1)).collect();
        mm.apply_batch(&Batch::inserting(path), &mut c)
            .expect("valid");
        assert!(mm.is_maximal());
        assert!(mm.matching_size() >= 2);
    }

    #[test]
    fn deletion_of_matched_edge_rematches() {
        let mut c = ctx();
        let mut mm = MaximalMatching::new(4);
        mm.apply_batch(
            &Batch::inserting([Edge::new(0, 1), Edge::new(0, 2), Edge::new(1, 3)]),
            &mut c,
        )
        .expect("valid");
        assert!(mm.is_maximal());
        let m0 = mm.matching();
        mm.apply_batch(&Batch::deleting(m0), &mut c).expect("valid");
        assert!(mm.is_maximal());
        // 0-2 and 1-3 still present: both must be matched now.
        assert_eq!(mm.matching_size(), 2);
    }

    #[test]
    fn random_churn_stays_maximal_and_half_approx() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..10 {
            let n = 40;
            let mut c = ctx();
            let mut mm = MaximalMatching::new(n);
            let mut live: Vec<Edge> = Vec::new();
            for _ in 0..12 {
                let mut ins = Vec::new();
                let mut del = Vec::new();
                for _ in 0..8 {
                    if rng.gen_bool(0.6) || live.is_empty() {
                        let a = rng.gen_range(0..n as u32);
                        let b = rng.gen_range(0..n as u32);
                        if a != b {
                            let e = Edge::new(a, b);
                            if !live.contains(&e) && !ins.contains(&e) {
                                ins.push(e);
                            }
                        }
                    } else {
                        live.shuffle(&mut rng);
                        if let Some(e) = live.pop() {
                            del.push(e);
                        }
                    }
                }
                live.extend(&ins);
                let updates: Batch = ins
                    .iter()
                    .map(|&e| Update::Insert(e))
                    .chain(del.iter().map(|&e| Update::Delete(e)))
                    .collect();
                mm.apply_batch(&updates, &mut c).expect("valid");
                assert!(mm.is_maximal(), "trial {trial} lost maximality");
                // Matching edges are live and disjoint.
                let m = mm.matching();
                let mut used = BTreeSet::new();
                for e in &m {
                    assert!(live.contains(e), "matched edge {e} not live");
                    assert!(used.insert(e.u()) && used.insert(e.v()));
                }
                let opt = oracle::maximum_matching_size(n, &live);
                assert!(2 * m.len() >= opt, "trial {trial}: not a 2-approx");
            }
        }
    }

    #[test]
    fn rematch_rounds_stay_small() {
        let n = 256;
        let mut c = ctx();
        let mut mm = MaximalMatching::new(n);
        let stream = gen::random_insert_stream(n, 6, 32, 13);
        let mut max_rounds = 0;
        for batch in &stream.batches {
            mm.apply_batch(batch, &mut c).expect("valid");
            max_rounds = max_rounds.max(mm.last_rematch_rounds());
        }
        // The paper's budget is O(log 1/κ); our substitute should be
        // in the same ballpark, far below the batch size.
        assert!(max_rounds <= 8, "rematch took {max_rounds} rounds");
        assert!(mm.is_maximal());
    }

    #[test]
    fn duplicate_and_missing_updates_ignored() {
        let mut c = ctx();
        let mut mm = MaximalMatching::new(4);
        mm.apply_batch(
            &Batch::inserting([Edge::new(0, 1), Edge::new(0, 1)]),
            &mut c,
        )
        .expect("duplicates are set-semantic here");
        assert_eq!(mm.edge_count(), 1);
        mm.apply_batch(&Batch::deleting([Edge::new(2, 3)]), &mut c)
            .expect("missing deletions ignored");
        assert_eq!(mm.edge_count(), 1);
        assert!(mm.words() > 0);
    }

    #[test]
    fn out_of_range_endpoint_is_invalid_batch() {
        let mut c = ctx();
        let mut mm = MaximalMatching::new(4);
        let err = mm
            .apply_batch(&Batch::inserting([Edge::new(0, 9)]), &mut c)
            .expect_err("endpoint outside [0, 4)");
        assert!(matches!(err, MpcStreamError::InvalidBatch(_)));
        assert_eq!(mm.edge_count(), 0, "state unchanged on error");
    }

    #[test]
    fn oversized_batch_is_capacity_error() {
        let mut c = MpcContext::new(
            MpcConfig::builder(64, 0.5)
                .local_capacity(4)
                .machines(2)
                .build(),
        );
        let mut mm = MaximalMatching::new(64);
        let big = Batch::inserting((0..8u32).map(|i| Edge::new(i, i + 8)));
        let err = mm.apply_batch(&big, &mut c).expect_err("cannot fit");
        assert!(matches!(err, MpcStreamError::Capacity(_)));
    }

    #[test]
    fn batch_applies_in_arrival_order() {
        let mut c = ctx();
        let mut mm = MaximalMatching::new(4);
        let e = Edge::new(0, 1);
        // Insert then delete of an absent edge nets to absent…
        mm.apply_batch(
            &Batch::from_updates(vec![Update::Insert(e), Update::Delete(e)]),
            &mut c,
        )
        .expect("valid");
        assert_eq!(mm.edge_count(), 0);
        // …and delete then insert of a live edge nets to present.
        mm.apply_batch(&Batch::inserting([e]), &mut c)
            .expect("valid");
        mm.apply_batch(
            &Batch::from_updates(vec![Update::Delete(e), Update::Insert(e)]),
            &mut c,
        )
        .expect("valid");
        assert_eq!(mm.edge_count(), 1);
        assert_eq!(mm.matching_size(), 1);
    }
}
