//! Approximate maximum matching in the streaming MPC model
//! (paper Section 8, Theorems 8.1, 8.2, 8.5, 8.6).
//!
//! Four components:
//!
//! * [`greedy::CappedGreedyMatching`] — the insertion-only
//!   `O(α)`-approximate matcher of Theorem 8.1: a greedy matching
//!   capped at `c·n/α` edges, processed batch-at-a-time.
//! * [`no21::MaximalMatching`] — the batch-dynamic *maximal* matching
//!   substrate standing in for Nowicki–Onak \[NO21\]
//!   (Proposition 8.4). Same interface and cost envelope; free
//!   vertices are re-matched by synchronized greedy proposal rounds.
//!   This is a documented substitution — see DESIGN.md.
//! * [`akly::AklyMatching`] — the dynamic-stream `O(α)`-approximate
//!   matcher of Theorem 8.2 (\[AKLY16\]): random bipartition, `β`
//!   vertex groups per side, `γ` random *active pairs* per group,
//!   one `ℓ0`-sampler per active pair; the sampler outcomes form the
//!   sparsifier `H`, on which the maximal-matching substrate runs.
//! * [`tester::MatchingSizeEstimator`] — the `O(α)` matching-size
//!   estimators of Theorems 8.5/8.6 (\[AKL'21\]-style `Tester`
//!   subroutines at geometric guesses, with induced vertex sampling).

#![forbid(unsafe_code)]

pub mod akly;
pub mod greedy;
pub mod no21;
pub mod tester;

pub use akly::AklyMatching;
pub use greedy::CappedGreedyMatching;
pub use no21::MaximalMatching;
pub use tester::{MatchingSizeEstimator, StreamKind};

/// Registers this crate's snapshot decoders — `matching-akly`,
/// `matching-maximal`, and the two stream-kind registrations of the
/// size estimator (`matching-estimator-insert` /
/// `matching-estimator-dynamic`) — into a
/// [`MaintainerRegistry`](mpc_stream_core::MaintainerRegistry).
///
/// Both estimator kinds decode the same struct; the stream-kind tag
/// inside the payload must agree with the name the section was saved
/// under, which the loaders cross-check.
pub fn register_snapshot_loaders(reg: &mut mpc_stream_core::MaintainerRegistry) {
    use mpc_snapshot::Persist;
    reg.register("matching-akly", |r| Ok(Box::new(AklyMatching::load(r)?)));
    reg.register("matching-maximal", |r| {
        Ok(Box::new(MaximalMatching::load(r)?))
    });
    reg.register("matching-estimator-insert", |r| {
        let m = MatchingSizeEstimator::load(r)?;
        if m.kind() != StreamKind::InsertionOnly {
            return Err(mpc_snapshot::SnapshotError::Corrupt(
                "estimator saved as insertion-only decodes as dynamic".into(),
            ));
        }
        Ok(Box::new(m))
    });
    reg.register("matching-estimator-dynamic", |r| {
        let m = MatchingSizeEstimator::load(r)?;
        if m.kind() != StreamKind::Dynamic {
            return Err(mpc_snapshot::SnapshotError::Corrupt(
                "estimator saved as dynamic decodes as insertion-only".into(),
            ));
        }
        Ok(Box::new(m))
    });
}
