//! Membership churn: a collaboration platform where users join,
//! connect, disconnect, and leave — exercising the Section 1.2
//! relaxation (dynamic vertex set) together with the adversarial-
//! robustness wrapper.
//!
//! ```sh
//! cargo run --example membership_churn
//! ```
//!
//! Two structures track the same workspace graph:
//!
//! * a [`VertexDynamicConnectivity`] with a fixed slot capacity (the
//!   paper's "the MPC machines stay the same"), recycling the ids of
//!   departed users;
//! * a [`RobustConnectivity`] over the full capacity space, showing
//!   what the adaptive-adversary guarantee costs in memory.

use mpc_stream::core_alg::{ConnectivityConfig, RobustConnectivity, VertexDynamicConnectivity};
use mpc_stream::graph::ids::Edge;
use mpc_stream::graph::update::Batch;
use mpc_stream::mpc::{MpcConfig, MpcContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let capacity = 128;
    let cfg = MpcConfig::builder(capacity, 0.5)
        .local_capacity(1 << 16)
        .build();
    println!(
        "workspace: capacity {capacity} member slots, s = {} words/machine",
        cfg.local_capacity()
    );
    let mut ctx = MpcContext::new(cfg);
    let mut members =
        VertexDynamicConnectivity::with_capacity(capacity, ConnectivityConfig::default(), 11);
    let mut robust = RobustConnectivity::new(capacity, 2, 32, ConnectivityConfig::default(), 12);

    let mut rng = StdRng::seed_from_u64(7);
    let mut roster: Vec<u32> = Vec::new();
    let mut links: Vec<Edge> = Vec::new();

    println!("\n epoch | join | leave | link | unlink | active | teams | robust words");
    println!(" ------+------+-------+------+--------+--------+-------+-------------");
    for epoch in 0..12 {
        let mut joined = 0;
        let mut left = 0;
        let mut linked = 0;
        let mut unlinked = 0;
        for _ in 0..24 {
            match rng.gen_range(0..4) {
                0 if members.active_count() < capacity => {
                    roster.push(members.add_vertex(&mut ctx)?);
                    joined += 1;
                }
                1 if roster.len() >= 2 => {
                    let a = roster[rng.gen_range(0..roster.len())];
                    let b = roster[rng.gen_range(0..roster.len())];
                    if a != b {
                        let e = Edge::new(a, b);
                        if !links.contains(&e) {
                            members.apply_batch(&Batch::inserting([e]), &mut ctx)?;
                            robust.apply_batch(&Batch::inserting([e]), &mut ctx)?;
                            links.push(e);
                            linked += 1;
                        }
                    }
                }
                2 if !links.is_empty() => {
                    let e = links.swap_remove(rng.gen_range(0..links.len()));
                    members.apply_batch(&Batch::deleting([e]), &mut ctx)?;
                    robust.apply_batch(&Batch::deleting([e]), &mut ctx)?;
                    unlinked += 1;
                }
                3 if !roster.is_empty() => {
                    let i = rng.gen_range(0..roster.len());
                    let v = roster[i];
                    if links.iter().all(|e| !e.touches(v)) {
                        members.remove_vertex(v, &mut ctx)?;
                        roster.swap_remove(i);
                        left += 1;
                    }
                }
                _ => {}
            }
        }
        println!(
            " {:>5} | {:>4} | {:>5} | {:>4} | {:>6} | {:>6} | {:>5} | {:>12}",
            epoch,
            joined,
            left,
            linked,
            unlinked,
            members.active_count(),
            members.component_count(),
            robust.words(),
        );
    }

    println!(
        "\nrobustness budget: {} adaptive batches consumed, {} remaining (instance {} exposed)",
        robust.exposures_spent(),
        robust.exposures_remaining(),
        robust.exposed_instance(),
    );
    if let Some(&v) = roster.first() {
        println!(
            "member {v}: degree {}, team label {}",
            members.degree(v)?,
            members.component_of(v)?,
        );
    }
    Ok(())
}
