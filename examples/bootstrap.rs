//! Bootstrapping from an existing graph — the paper's pre-computation
//! phase (end of Section 1.1): instead of starting from an empty
//! graph, load an arbitrary snapshot with a static `O(log n)`-round
//! algorithm once, then stream updates dynamically at `O(1/φ)` rounds
//! per batch.
//!
//! ```sh
//! cargo run --example bootstrap
//! ```
//!
//! The snapshot is a preferential-attachment graph (heavy-tailed
//! degrees, like a crawled social network); the follow-on stream mixes
//! insertions and deletions.

use mpc_stream::core_alg::{Connectivity, ConnectivityConfig};
use mpc_stream::graph::gen;
use mpc_stream::graph::ids::Edge;
use mpc_stream::graph::oracle;
use mpc_stream::graph::update::{Batch, Update};
use mpc_stream::mpc::{MpcConfig, MpcContext};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512;
    let cfg = MpcConfig::builder(n, 0.5).local_capacity(1 << 17).build();
    let mut ctx = MpcContext::new(cfg);

    // A crawled snapshot: preferential attachment, 2 links per vertex.
    let snapshot = gen::preferential_attachment_stream(n, 2, usize::MAX, 7);
    let graph = snapshot.replay().pop().expect("nonempty");
    let edges: Vec<Edge> = graph.edges().collect();
    println!(
        "snapshot: {} vertices, {} edges (preferential attachment)",
        n,
        edges.len()
    );

    // One-time static bootstrap (Θ(log n) rounds), then dynamic.
    ctx.begin_phase("bootstrap");
    let mut conn = Connectivity::from_graph(
        n,
        ConnectivityConfig::default(),
        42,
        edges.iter().copied(),
        &mut ctx,
    )?;
    let boot = ctx.end_phase();
    println!(
        "bootstrap: {} rounds (one-time), components = {}",
        boot.rounds,
        conn.component_count()
    );
    assert_eq!(
        conn.component_labels(),
        &oracle::components(n, edges.iter().copied())[..]
    );

    // Follow-on dynamic phase: delete hub-adjacent edges, insert new
    // ones — each batch at the usual constant round cost.
    let forest = conn.spanning_forest();
    let victims: Vec<Edge> = forest.iter().copied().step_by(7).take(16).collect();
    let additions: Vec<Update> = (0..16u32)
        .map(|i| Update::Insert(Edge::new(i, n as u32 - 1 - i)))
        .filter(|u| !graph.contains(u.edge()))
        .collect();
    let mut batch = Batch::deleting(victims);
    batch.extend(additions);

    ctx.begin_phase("dynamic-batch");
    conn.apply_batch(&batch, &mut ctx)?;
    let dyn_phase = ctx.end_phase();
    println!(
        "dynamic batch of {} updates: {} rounds (vs {} for the bootstrap)",
        batch.len(),
        dyn_phase.rounds,
        boot.rounds
    );
    println!(
        "components now: {}, spanning forest {} edges",
        conn.component_count(),
        conn.spanning_forest().len()
    );
    Ok(())
}
