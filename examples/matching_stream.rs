//! Approximate maximum matching over a dynamic assignment market
//! (paper Section 8 / Theorem 1.3).
//!
//! ```sh
//! cargo run --example matching_stream
//! ```
//!
//! Streams a planted-matching workload (so true `OPT` is known
//! exactly) through three structures at several `α` targets:
//!
//! * the insertion-only capped-greedy matcher (Theorem 8.1),
//! * the AKLY dynamic sparsifier matcher (Theorem 8.2),
//! * the matching-size estimator (Theorem 8.5),
//!
//! and prints size, measured approximation ratio, and memory — the
//! `Õ(n/α)` vs `Õ(max{n²/α³, n/α})` trade-off of the theorems.

use mpc_stream::graph::gen;
use mpc_stream::graph::ids::Edge;
use mpc_stream::graph::oracle;
use mpc_stream::matching::{AklyMatching, CappedGreedyMatching, MatchingSizeEstimator, StreamKind};
use mpc_stream::mpc::{MpcConfig, MpcContext};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let planted = 48;
    let (stream, opt) = gen::planted_matching_stream(planted, 64, 16, 77);
    let n = stream.n;
    let cfg = MpcConfig::builder(n, 0.5).local_capacity(1 << 17).build();
    let mut ctx = MpcContext::new(cfg);

    println!("assignment market: {n} vertices, planted OPT = {opt}\n");
    println!(
        "     α | greedy size (ratio) | AKLY size (ratio) | estimate | greedy words | AKLY words"
    );
    println!(
        " ------+---------------------+-------------------+----------+--------------+-----------"
    );
    for alpha in [1.0f64, 2.0, 4.0, 8.0] {
        let mut greedy = CappedGreedyMatching::for_alpha(n, alpha);
        let mut akly = AklyMatching::new(n, alpha, 9);
        let mut est = MatchingSizeEstimator::new(n, alpha, StreamKind::InsertionOnly, 3);
        for batch in &stream.batches {
            let ins: Vec<Edge> = batch.insertions().collect();
            greedy.apply_insert_batch(&ins, &mut ctx);
            akly.apply_batch(batch, &mut ctx)?;
            est.apply_batch(batch, &mut ctx)?;
        }
        let g = greedy.len().max(1);
        let a = akly.matching_size().max(1);
        println!(
            " {:>5} | {:>11} ({:>5.2}) | {:>9} ({:>5.2}) | {:>8} | {:>12} | {:>10}",
            alpha,
            greedy.len(),
            opt as f64 / g as f64,
            akly.matching_size(),
            opt as f64 / a as f64,
            est.estimate(),
            greedy.words(),
            akly.words(),
        );
    }

    // Sanity: the final snapshot's exact optimum equals the plant.
    let last = stream.replay().pop().expect("nonempty stream");
    let edges: Vec<Edge> = last.edges().collect();
    assert_eq!(oracle::maximum_matching_size(n, &edges), opt);
    println!("\n(true OPT verified with Edmonds' blossom algorithm)");
    Ok(())
}
