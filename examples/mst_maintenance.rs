//! Minimum-spanning-forest maintenance over a growing weighted
//! network (paper Section 7 / Theorem 1.2).
//!
//! ```sh
//! cargo run --example mst_maintenance
//! ```
//!
//! Streams weighted link insertions (think: network cables with
//! latencies) through two structures:
//!
//! * the **exact** insertion-only MSF (Euler tours + parallel
//!   Identify-Path swaps), checked against Kruskal after every batch;
//! * the **(1+ε)-approximate weight** estimator that also survives
//!   deletions, at ε ∈ {0.1, 0.5}.

use mpc_stream::graph::gen;
use mpc_stream::graph::ids::WeightedEdge;
use mpc_stream::graph::oracle;
use mpc_stream::mpc::{MpcConfig, MpcContext};
use mpc_stream::msf::{ApproxMsfWeight, ExactMsf};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 128;
    let max_w = 64;
    let cfg = MpcConfig::builder(n, 0.5).local_capacity(1 << 17).build();
    let mut ctx = MpcContext::new(cfg);
    let mut exact = ExactMsf::new(n);
    let mut approx_tight = ApproxMsfWeight::new(n, 0.1, max_w, 5);
    let mut approx_loose = ApproxMsfWeight::new(n, 0.5, max_w, 5);

    let stream = gen::random_weighted_insert_stream(n, 8, 20, max_w, 31);
    let mut all: Vec<WeightedEdge> = Vec::new();

    println!("weighted network on {n} nodes, weights in [1, {max_w}]\n");
    println!(" batch | kruskal | exact-MSF | swaps | est (ε=0.1) | est (ε=0.5)");
    println!(" ------+---------+-----------+-------+-------------+------------");
    for (i, batch) in stream.batches.iter().enumerate() {
        exact.apply_batch(batch, &mut ctx)?;
        approx_tight.apply_batch(batch, &mut ctx)?;
        approx_loose.apply_batch(batch, &mut ctx)?;
        all.extend(batch.insertions());
        let kruskal = oracle::msf_weight(n, all.iter().copied());
        println!(
            " {:>5} | {:>7} | {:>9} | {:>5} | {:>11.1} | {:>10.1}",
            i,
            kruskal,
            exact.weight(),
            exact.last_iterations(),
            approx_tight.weight_estimate(),
            approx_loose.weight_estimate(),
        );
        assert_eq!(exact.weight(), kruskal, "exact MSF must match Kruskal");
    }

    println!(
        "\nexact forest: {} edges, total weight {} (matches Kruskal at every batch)",
        exact.forest().len(),
        exact.weight()
    );
    println!(
        "ε=0.1 instances: {}, ε=0.5 instances: {} (memory scales with log_1+ε W)",
        approx_tight.instance_count(),
        approx_loose.instance_count()
    );
    Ok(())
}
