//! Minimum-spanning-forest maintenance over a growing weighted
//! network (paper Section 7 / Theorem 1.2).
//!
//! ```sh
//! cargo run --example mst_maintenance
//! ```
//!
//! Streams weighted link insertions (think: network cables with
//! latencies) through **one `Session` driving three maintainers** on
//! a shared accounted cluster — the multi-maintainer workload the
//! unified surface exists for:
//!
//! * the **exact** insertion-only MSF (Euler tours + parallel
//!   Identify-Path swaps), checked against Kruskal after every batch;
//! * two **(1+ε)-approximate weight** estimators that also survive
//!   deletions, at ε ∈ {0.1, 0.5}.
//!
//! The maintainers run in parallel on disjoint machine groups, so
//! every batch costs the *maximum* maintainer's rounds, not the sum.

use mpc_stream::graph::gen;
use mpc_stream::graph::oracle;
use mpc_stream::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 128;
    let max_w = 64;
    // The (1+ε) estimators each run ⌈log_{1+ε} W⌉ + 1 parallel
    // connectivity instances (Section 7.2), so the cluster must hold
    // ~57 sketch banks, not one: provision machines for the whole
    // threshold stack or the session's capacity audit will flag it.
    let cfg = MpcConfig::builder(n, 0.5)
        .local_capacity(1 << 17)
        .machines(64)
        .build();
    let mut session = Session::new(cfg);
    let exact = session.register(ExactMsf::new(n));
    let tight = session.register(ApproxMsfWeight::new(n, 0.1, max_w, 5));
    let loose = session.register(ApproxMsfWeight::new(n, 0.5, max_w, 5));

    let stream = gen::random_weighted_insert_stream(n, 8, 20, max_w, 31);
    let mut all: Vec<WeightedEdge> = Vec::new();

    println!("weighted network on {n} nodes, weights in [1, {max_w}]\n");
    println!(" batch | rounds | kruskal | exact-MSF | swaps | est (ε=0.1) | est (ε=0.5)");
    println!(" ------+--------+---------+-----------+-------+-------------+------------");
    for (i, batch) in stream.batches.iter().enumerate() {
        let reports = session.apply_weighted(batch.iter())?;
        let batch_rounds: u64 = reports.iter().map(|r| r.rounds).max().unwrap_or(0);
        all.extend(batch.insertions());
        let kruskal = oracle::msf_weight(n, all.iter().copied());
        let ex = session.get(exact);
        println!(
            " {:>5} | {:>6} | {:>7} | {:>9} | {:>5} | {:>11.1} | {:>10.1}",
            i,
            batch_rounds,
            kruskal,
            ex.weight(),
            ex.last_iterations(),
            session.get(tight).weight_estimate(),
            session.get(loose).weight_estimate(),
        );
        assert_eq!(ex.weight(), kruskal, "exact MSF must match Kruskal");
    }

    // One ask_all cross-checks all three maintainers' weight answers
    // on the shared cluster (rounds max-compose across the fan-out).
    let answers = session.ask_all(&QueryRequest::ForestWeight)?;
    assert_eq!(answers.len(), 3);
    let exact_w = session.get(exact).weight() as f64;
    println!("\ncross-check (one ask_all, three charged answers):");
    for ((id, answer), report) in answers.iter().zip(session.query_reports()) {
        let est = answer.as_weight().expect("ForestWeight answers a weight");
        println!(
            "  {} (group {}): forest_weight = {est:.1} ({} rounds) — ratio {:.3}",
            report.maintainer,
            session.machine_group(*id).expect("registered"),
            report.rounds,
            est / exact_w,
        );
    }

    let ex = session.get(exact);
    println!(
        "\nexact forest: {} edges, total weight {} (matches Kruskal at every batch)",
        ex.forest().len(),
        ex.weight()
    );
    println!(
        "ε=0.1 instances: {}, ε=0.5 instances: {} (memory scales with log_1+ε W)",
        session.get(tight).instance_count(),
        session.get(loose).instance_count()
    );
    println!("\nsession rollup:\n{}", session.stats().summary());
    Ok(())
}
