//! Network reliability monitoring with k-edge-connectivity
//! certificates (the Section 9 extension), driven through the
//! unified [`Session`] and its typed query plane.
//!
//! ```sh
//! cargo run --example network_reliability
//! ```
//!
//! Scenario: a datacenter fabric evolves as links are provisioned and
//! decommissioned. The operator wants to know, after every
//! maintenance window (= update batch), whether the fabric can
//! survive one or two link failures — i.e. whether it is 2- and
//! 3-edge-connected — and which links are single points of failure
//! (bridges). Storing the whole fabric would cost `Θ(m)` words; the
//! sparse certificate answers all cut questions up to size `k` with
//! `O(k·n)` words.
//!
//! The cut question goes through `Session::ask(monitor,
//! &QueryRequest::MinCutLowerBound)`: the peel's `Θ(k log n)` rounds
//! are charged on the session's cluster and receipted per query —
//! the measured shape of the paper's Section 9 open problem (cheap
//! updates, expensive dynamic cut queries).

use mpc_stream::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u32 = 96; // racks
    let k = 3; // resolution: answer cut questions up to 3-conn
    let cfg = MpcConfig::builder(n as usize, 0.5)
        .local_capacity(1 << 16)
        .machines(8) // the monitor's machine group must hold k sketch banks
        .build();
    println!(
        "fabric monitor: {n} racks, certificate resolution k = {k}, s = {} words",
        cfg.local_capacity()
    );
    let mut session = Session::new(cfg);
    let monitor = session.register(DynamicKConn::new(n as usize, k, 0xFAB));
    let mut rng = StdRng::seed_from_u64(2024);
    let mut live: Vec<Edge> = Vec::new();

    // Window 0: bring up a ring backbone (survives 1 failure).
    let ring: Vec<Edge> = (0..n).map(|i| Edge::new(i, (i + 1) % n)).collect();
    live.extend(ring.iter().copied());
    session.apply(ring.into_iter().map(Update::Insert))?;
    report(&mut session, monitor, 0, live.len());

    // Window 1: add random cross-links (redundancy grows).
    let mut cross = Vec::new();
    while cross.len() < 64 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let e = Edge::new(a, b);
            if !live.contains(&e) && !cross.contains(&e) {
                cross.push(e);
            }
        }
    }
    live.extend(cross.iter().copied());
    session.apply(cross.into_iter().map(Update::Insert))?;
    report(&mut session, monitor, 1, live.len());

    // Window 2: decommission a quarter of the cross-links.
    let gone: Vec<Edge> = live.iter().skip(n as usize).step_by(4).copied().collect();
    live.retain(|e| !gone.contains(e));
    session.apply(gone.into_iter().map(Update::Delete))?;
    report(&mut session, monitor, 2, live.len());

    // Window 3: sever the ring at two points — bridges appear.
    let cut = vec![live[0], live[n as usize / 2]];
    live.retain(|e| !cut.contains(e));
    session.apply(cut.into_iter().map(Update::Delete))?;
    let last_cut = report(&mut session, monitor, 3, live.len());

    // The typed plane gives the same cut answer as the certificate —
    // one extra receipted ask as the cross-check.
    let answer = session.ask(monitor, &QueryRequest::MinCutLowerBound)?;
    let receipt = &session.query_reports()[0];
    assert_eq!(answer.as_min_cut(), Some(last_cut), "ask == certificate");
    assert!(receipt.rounds > 0, "dynamic cut queries are never free");
    println!(
        "\ntyped cross-check: ask(MinCutLowerBound) = {answer} \
         ({} rounds, {} words, receipted)",
        receipt.rounds, receipt.words
    );
    println!("\nsession rollup:\n{}", session.stats().summary());
    Ok(())
}

/// One maintenance-window report: a single Θ(k log n) certificate
/// peel, charged on the session's cluster through the typed closure
/// plane, answers every cut question of the window.
fn report(
    session: &mut Session,
    monitor: Handle<DynamicKConn>,
    window: usize,
    m: usize,
) -> (u64, bool) {
    let rounds_before = session.ctx().stats().rounds;
    let cert = session.query(monitor, |kc, ctx| kc.certificate_mut(ctx));
    let query_rounds = session.ctx().stats().rounds - rounds_before;
    let (lower, exact) = match cert.min_cut() {
        MinCut::Exact(v) => (v, true),
        MinCut::AtLeast(v) => (v, false),
    };
    let survives_one = cert.is_k_edge_connected(2).unwrap_or(false);
    let survives_two = cert.is_k_edge_connected(3).unwrap_or(false);
    let bridges = cert.bridges().expect("k >= 2");
    println!(
        "\nwindow {window}: {m} live links, certificate {} edges ({} words vs {} for the edge list)",
        cert.edge_count(),
        cert.words(),
        2 * m,
    );
    println!(
        "  {} ({}) | survives 1 failure: {survives_one} | survives 2: {survives_two} | \
         single points of failure: {} | query rounds: {query_rounds}",
        cert.min_cut(),
        if exact { "exact" } else { "at resolution" },
        bridges.len(),
    );
    if !bridges.is_empty() {
        let shown: Vec<String> = bridges.iter().take(4).map(|e| e.to_string()).collect();
        println!("  first bridges: {}", shown.join(", "));
    }
    assert!(lower <= 3, "resolution k = 3 caps the reported bound");
    assert!(query_rounds > 0, "dynamic cut queries are never free");
    (lower, exact)
}
