//! Network reliability monitoring with k-edge-connectivity
//! certificates (the Section 9 extension).
//!
//! ```sh
//! cargo run --example network_reliability
//! ```
//!
//! Scenario: a datacenter fabric evolves as links are provisioned and
//! decommissioned. The operator wants to know, after every
//! maintenance window (= update batch), whether the fabric can
//! survive one or two link failures — i.e. whether it is 2- and
//! 3-edge-connected — and which links are single points of failure
//! (bridges). Storing the whole fabric would cost `Θ(m)` words; the
//! sparse certificate answers all cut questions up to size `k` with
//! `O(k·n)` words.

use mpc_stream::graph::ids::Edge;
use mpc_stream::graph::update::Batch;
use mpc_stream::kconn::{DynamicKConn, MinCut};
use mpc_stream::mpc::{MpcConfig, MpcContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u32 = 96; // racks
    let k = 3; // resolution: answer cut questions up to 3-conn
    let cfg = MpcConfig::builder(n as usize, 0.5)
        .local_capacity(1 << 16)
        .build();
    println!(
        "fabric monitor: {n} racks, certificate resolution k = {k}, s = {} words",
        cfg.local_capacity()
    );
    let mut ctx = MpcContext::new(cfg);
    let mut monitor = DynamicKConn::new(n as usize, k, 0xFAB);
    let mut rng = StdRng::seed_from_u64(2024);
    let mut live: Vec<Edge> = Vec::new();

    // Window 0: bring up a ring backbone (survives 1 failure).
    let ring: Vec<Edge> = (0..n).map(|i| Edge::new(i, (i + 1) % n)).collect();
    live.extend(ring.iter().copied());
    monitor.apply_batch(&Batch::inserting(ring), &mut ctx)?;
    report(&monitor, &mut ctx, 0, live.len());

    // Window 1: add random cross-links (redundancy grows).
    let mut cross = Vec::new();
    while cross.len() < 64 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let e = Edge::new(a, b);
            if !live.contains(&e) && !cross.contains(&e) {
                cross.push(e);
            }
        }
    }
    live.extend(cross.iter().copied());
    monitor.apply_batch(&Batch::inserting(cross), &mut ctx)?;
    report(&monitor, &mut ctx, 1, live.len());

    // Window 2: decommission a quarter of the cross-links.
    let gone: Vec<Edge> = live.iter().skip(n as usize).step_by(4).copied().collect();
    live.retain(|e| !gone.contains(e));
    monitor.apply_batch(&Batch::deleting(gone), &mut ctx)?;
    report(&monitor, &mut ctx, 2, live.len());

    // Window 3: sever the ring at two points — bridges appear.
    let cut = vec![live[0], live[n as usize / 2]];
    live.retain(|e| !cut.contains(e));
    monitor.apply_batch(&Batch::deleting(cut), &mut ctx)?;
    report(&monitor, &mut ctx, 3, live.len());
    Ok(())
}

fn report(monitor: &DynamicKConn, ctx: &mut MpcContext, window: usize, m: usize) {
    let before = ctx.rounds();
    let cert = monitor.certificate(ctx);
    let query_rounds = ctx.rounds() - before;
    let survives_one = cert.is_k_edge_connected(2).unwrap_or(false);
    let survives_two = cert.is_k_edge_connected(3).unwrap_or(false);
    let bridges = cert.bridges().expect("k >= 2");
    println!(
        "\nwindow {window}: {m} live links, certificate {} edges ({} words vs {} for the edge list)",
        cert.edge_count(),
        cert.words(),
        2 * m,
    );
    println!(
        "  {} | survives 1 failure: {survives_one} | survives 2: {survives_two} | \
         single points of failure: {} | query rounds: {query_rounds}",
        cert.min_cut(),
        bridges.len(),
    );
    if !bridges.is_empty() {
        let shown: Vec<String> = bridges.iter().take(4).map(|e| e.to_string()).collect();
        println!("  first bridges: {}", shown.join(", "));
    }
    assert!(matches!(
        cert.min_cut(),
        MinCut::Exact(_) | MinCut::AtLeast(_)
    ));
}
