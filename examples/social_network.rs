//! Social-network community tracking — the paper's motivating
//! scenario (Section 1: "the dynamic nature of social networks …
//! millions of edges may be added or removed per second").
//!
//! ```sh
//! cargo run --example social_network
//! ```
//!
//! Simulates friendship churn over clustered communities: batches
//! alternately bridge communities together and cut the bridges again,
//! the hardest pattern for the replacement-edge machinery (every cut
//! makes the sketches prove that no reconnection exists). Drives the
//! paper's algorithm through the unified [`Session`] engine, tracks
//! communities and rounds per batch, and compares total memory
//! against the store-everything `Θ(n+m)` baseline the prior work uses
//! (kept on the legacy per-structure API — both surfaces coexist).

use mpc_stream::baselines::FullMemoryBaseline;
use mpc_stream::graph::gen;
use mpc_stream::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8 communities of 12 users each.
    let stream = gen::merge_split_stream(8, 12, 4, 48, 2024);
    let n = stream.n;
    let cfg = MpcConfig::builder(n, 0.5).local_capacity(1 << 17).build();
    let mut session = Session::new(cfg.clone());
    let conn = session.register(Connectivity::new(n, ConnectivityConfig::default(), 9));
    let mut baseline_ctx = MpcContext::new(cfg);
    let mut baseline = FullMemoryBaseline::new(n);

    println!("social graph: {n} users, community merge/split churn\n");
    println!(" batch |     kind     | rounds | communities | ours (words) | Θ(n+m) (words)");
    println!(" ------+--------------+--------+-------------+--------------+---------------");
    for (i, batch) in stream.batches.iter().enumerate() {
        let kind = if batch.insertions().count() > 0 && batch.deletions().count() == 0 {
            if i == 0 {
                "build"
            } else {
                "bridge"
            }
        } else {
            "cut"
        };
        let reports = session.apply_batch(batch)?;
        baseline.apply_batch(batch, &mut baseline_ctx);
        let c = session.get(conn);
        println!(
            " {:>5} | {:>12} | {:>6} | {:>11} | {:>12} | {:>13}",
            i,
            kind,
            reports.first().map_or(0, |r| r.rounds),
            c.component_count(),
            c.words(),
            baseline.words(),
        );
    }

    // The headline comparison (Theorem 1.1 vs prior work): our state
    // is independent of m; the baseline stores the whole graph.
    let c = session.get(conn);
    println!(
        "\nwith {} live edges: ours {} words vs Θ(n+m) baseline {} words",
        c.live_edge_count(),
        c.words(),
        baseline.words()
    );
    println!(
        "note: at this toy scale the n·O(log³ n) sketch constants dominate; the point of\n\
         Theorem 1.1 is the *slope* — our footprint is flat in m while the baseline grows\n\
         linearly. Experiment E2/E3 (crates/bench) runs the densifying sweep that shows\n\
         the crossover at larger n."
    );
    println!("\nsession rollup:\n{}", session.stats().summary());
    Ok(())
}
