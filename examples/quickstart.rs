//! Quickstart: maintain connectivity of an evolving graph in the
//! streaming MPC model through the unified [`Session`] driver.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a small cluster (`s = n^φ` words per machine, machine count
//! defaulted from the slack-provisioned `Θ(n log³ n)` budget),
//! registers the paper's connectivity algorithm in a `Session`, and
//! streams a few batches of edge insertions and deletions through it,
//! printing the per-batch round counts and memory — the quantities
//! Theorem 1.1 bounds.

use mpc_stream::graph::gen;
use mpc_stream::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 256;
    let phi = 0.5;
    // The default machine count provisions the n·log³n budget *with*
    // the sketch bank's constant slack folded in (STATE_SLACK), so
    // the standing state fits without a manual override. Strict mode:
    // any primitive that overflows s fails the example instead of
    // being absorbed as a permissive-mode violation.
    let cfg = MpcConfig::builder(n, phi)
        .local_capacity(1 << 16)
        .strict(true)
        .build();
    println!(
        "cluster: n = {n}, φ = {phi}, s = {} words, {} machines (strict mode)",
        cfg.local_capacity(),
        cfg.machines()
    );

    let mut session = Session::new(cfg);
    let conn = session.register(Connectivity::new(n, ConnectivityConfig::default(), 42));

    // An oblivious mixed insert/delete stream.
    let stream = gen::random_mixed_stream(n, 10, 16, 0.7, 7);
    println!("\n batch | updates | rounds | comm words | components | live edges");
    println!(" ------+---------+--------+------------+------------+-----------");
    for (i, batch) in stream.batches.iter().enumerate() {
        let reports = session.apply_batch(batch)?;
        // One registered maintainer → at most one report (none if the
        // batch normalized to a no-op).
        let (rounds, words) = reports.first().map_or((0, 0), |r| (r.rounds, r.words));
        let c = session.get(conn);
        println!(
            " {:>5} | {:>7} | {:>6} | {:>10} | {:>10} | {:>9}",
            i,
            batch.len(),
            rounds,
            words,
            c.component_count(),
            c.live_edge_count(),
        );
    }

    let c = session.get(conn);
    println!(
        "\ninherent reads are free: vertex 0 is in component {} (maintained labelling)",
        c.component_of(0)
    );
    println!(
        "spanning forest has {} edges (maintained explicitly)",
        c.spanning_forest().len()
    );
    // The typed query plane charges the same answers against the
    // cluster and receipts them — O(1) rounds, because the solution
    // is maintained.
    let answer = session.ask(conn, &QueryRequest::ComponentCount)?;
    let receipt = &session.query_reports()[0];
    println!(
        "charged query: component_count = {answer} ({} rounds, {} words on the cluster)",
        receipt.rounds, receipt.words
    );
    println!(
        "peak memory: {} words on one machine, {} words total (budget O(n log³ n))",
        session.ctx().stats().peak_machine_words,
        session.ctx().stats().peak_total_words
    );
    println!("\nsession rollup:\n{}", session.stats().summary());
    println!("\nfull accounting:\n{}", session.ctx().stats().summary());
    Ok(())
}
