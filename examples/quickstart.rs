//! Quickstart: maintain connectivity of an evolving graph in the
//! streaming MPC model.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a small cluster (`s = n^φ` words per machine), streams a
//! few batches of edge insertions and deletions through the paper's
//! connectivity algorithm, and prints the per-batch round counts and
//! memory — the quantities Theorem 1.1 bounds.

use mpc_stream::core_alg::{Connectivity, ConnectivityConfig};
use mpc_stream::graph::gen;
use mpc_stream::mpc::{MpcConfig, MpcContext};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 256;
    let phi = 0.5;
    // The default machine count covers the n·log³n *asymptotic*
    // budget, but at n = 256 the sketch bank's constants are larger:
    // t = ⌈log n⌉ + 6 = 14 copies of ~79 words per vertex ≈ 1106
    // words/vertex, ≈ 283k words total — more than the 2 machines the
    // budget-derived default provides at s = 2^16. Size the cluster
    // for the actual standing state and run strict, so any primitive
    // that overflows s fails the example instead of being absorbed as
    // a permissive-mode violation.
    let cfg = MpcConfig::builder(n, phi)
        .local_capacity(1 << 16)
        .machines(8)
        .strict(true)
        .build();
    println!(
        "cluster: n = {n}, φ = {phi}, s = {} words, {} machines (strict mode)",
        cfg.local_capacity(),
        cfg.machines()
    );

    let mut ctx = MpcContext::new(cfg);
    let mut conn = Connectivity::new(n, ConnectivityConfig::default(), 42);

    // An oblivious mixed insert/delete stream.
    let stream = gen::random_mixed_stream(n, 10, 16, 0.7, 7);
    println!("\n batch | updates | rounds | comm words | components | live edges");
    println!(" ------+---------+--------+------------+------------+-----------");
    for (i, batch) in stream.batches.iter().enumerate() {
        ctx.begin_phase("batch");
        conn.apply_batch(batch, &mut ctx)?;
        let report = ctx.end_phase();
        println!(
            " {:>5} | {:>7} | {:>6} | {:>10} | {:>10} | {:>9}",
            i,
            batch.len(),
            report.rounds,
            report.words,
            conn.component_count(),
            conn.live_edge_count(),
        );
    }

    println!(
        "\nqueries are free: vertex 0 is in component {} (maintained labelling)",
        conn.component_of(0)
    );
    println!(
        "spanning forest has {} edges (maintained explicitly)",
        conn.spanning_forest().len()
    );
    println!(
        "peak memory: {} words on one machine, {} words total (budget O(n log³ n))",
        ctx.stats().peak_machine_words,
        ctx.stats().peak_total_words
    );
    println!("\nfull accounting:\n{}", ctx.stats().summary());
    Ok(())
}
